#include "p2pse/support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "p2pse/support/rng.hpp"

namespace p2pse::support {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForRangesCoversAllIndicesExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_ranges(1000, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRangesZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for_ranges(
      0, [](std::size_t, std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForRangesHandlesFewerItemsThanChunks) {
  // n smaller than thread_count * 4 must still cover every index once,
  // with no empty-range calls.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(5);
  std::atomic<int> calls{0};
  pool.parallel_for_ranges(5, [&](std::size_t begin, std::size_t end) {
    EXPECT_LT(begin, end);
    ++calls;
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_LE(calls.load(), 5);
}

TEST(ThreadPool, ParallelForRangesPropagatesFirstExceptionInRangeOrder) {
  ThreadPool pool(4);
  try {
    pool.parallel_for_ranges(100, [](std::size_t begin, std::size_t) {
      throw std::runtime_error("range " + std::to_string(begin));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    // Every range throws; the FIRST range's error (begin == 0) must win
    // regardless of completion order.
    EXPECT_STREQ(error.what(), "range 0");
  }
}

TEST(ThreadPool, ParallelForDelegatesToRanges) {
  // parallel_for is a per-index veneer over parallel_for_ranges; both must
  // agree on coverage.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> ranged{0};
  std::atomic<std::uint64_t> indexed{0};
  pool.parallel_for_ranges(257, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ranged += i;
  });
  pool.parallel_for(257, [&](std::size_t i) { indexed += i; });
  EXPECT_EQ(ranged.load(), indexed.load());
  EXPECT_EQ(ranged.load(), 257u * 256u / 2u);
}

TEST(ThreadPool, ParallelReplicasAreDeterministic) {
  // The core HPC property: per-replica RNG substreams make parallel
  // execution bit-identical to sequential execution.
  const RngStream root(2024);
  const auto replica_sum = [&root](std::size_t r) {
    RngStream rng = root.split("replica", r);
    std::uint64_t acc = 0;
    for (int i = 0; i < 1000; ++i) acc ^= rng.next_u64();
    return acc;
  };
  std::vector<std::uint64_t> sequential(8);
  for (std::size_t r = 0; r < 8; ++r) sequential[r] = replica_sum(r);

  std::vector<std::uint64_t> parallel(8);
  ThreadPool pool(4);
  pool.parallel_for(8, [&](std::size_t r) { parallel[r] = replica_sum(r); });
  EXPECT_EQ(parallel, sequential);
}

TEST(ThreadPool, DestructorDrainsGracefully) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace p2pse::support
