#include "p2pse/support/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace p2pse::support {
namespace {

TEST(IntHistogram, EmptyState) {
  IntHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.count(5), 0u);
}

TEST(IntHistogram, AddAndQuery) {
  IntHistogram h;
  h.add(3);
  h.add(3);
  h.add(7, 5);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 5u);
  EXPECT_EQ(h.count(4), 0u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_NEAR(h.mean(), (3.0 * 2 + 7.0 * 5) / 7.0, 1e-12);
}

TEST(IntHistogram, ItemsAreSorted) {
  IntHistogram h;
  h.add(9);
  h.add(1);
  h.add(5);
  const auto items = h.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 1u);
  EXPECT_EQ(items[1].first, 5u);
  EXPECT_EQ(items[2].first, 9u);
}

TEST(LogBinned, EmptyHistogram) {
  IntHistogram h;
  EXPECT_TRUE(log_binned(h).empty());
}

TEST(LogBinned, SkipsZeroValues) {
  IntHistogram h;
  h.add(0, 100);
  h.add(2, 5);
  const auto bins = log_binned(h);
  std::uint64_t total = 0;
  for (const auto& b : bins) total += b.count;
  EXPECT_EQ(total, 5u);
}

TEST(LogBinned, BinsCoverValues) {
  IntHistogram h;
  for (std::uint64_t v : {1, 2, 3, 10, 100, 1000}) h.add(v);
  const auto bins = log_binned(h, 4);
  std::uint64_t total = 0;
  for (const auto& b : bins) {
    EXPECT_GT(b.upper, b.lower);
    EXPECT_GE(b.center, b.lower);
    EXPECT_LE(b.center, b.upper);
    total += b.count;
  }
  EXPECT_EQ(total, 6u);
}

TEST(LogBinned, InvalidBinsPerDecade) {
  IntHistogram h;
  h.add(5);
  EXPECT_TRUE(log_binned(h, 0).empty());
  EXPECT_TRUE(log_binned(h, -2).empty());
}

TEST(PowerLawSlope, RecoversKnownExponent) {
  // Build an exact power law: count(d) ~ d^-2.5 over two decades.
  IntHistogram h;
  for (std::uint64_t d = 1; d <= 300; ++d) {
    const auto count = static_cast<std::uint64_t>(
        1e7 * std::pow(static_cast<double>(d), -2.5));
    if (count > 0) h.add(d, count);
  }
  const auto bins = log_binned(h, 8);
  const double slope = power_law_slope(bins);
  EXPECT_NEAR(slope, -2.5, 0.3);
}

TEST(PowerLawSlope, DegenerateInputs) {
  EXPECT_EQ(power_law_slope({}), 0.0);
  IntHistogram h;
  h.add(5, 10);
  EXPECT_EQ(power_law_slope(log_binned(h)), 0.0);  // single bin
}

}  // namespace
}  // namespace p2pse::support
