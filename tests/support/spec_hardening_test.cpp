// Duplicate-key hardening across every spec grammar in the tree: a repeated
// key used to be resolved silently (first occurrence won through
// SpecValueReader::find), corrupting sweeps whose command line was edited
// in place. All four grammars now reject duplicates outright.
#include <gtest/gtest.h>

#include <stdexcept>

#include "p2pse/est/registry.hpp"
#include "p2pse/sim/channel.hpp"
#include "p2pse/support/spec_reader.hpp"
#include "p2pse/topo/topology.hpp"
#include "p2pse/trace/workloads.hpp"

namespace p2pse {
namespace {

TEST(SpecHardening, ParseSpecRejectsDuplicateKeys) {
  EXPECT_THROW((void)support::parse_spec("name:a=1,a=2", "test spec"),
               std::invalid_argument);
  // Distinct keys still parse; order is preserved.
  const support::ParsedSpec ok = support::parse_spec("name:a=1,b=2", "test");
  EXPECT_EQ(ok.overrides.size(), 2u);
}

TEST(SpecHardening, EstimatorSpecRejectsDuplicateKeys) {
  EXPECT_THROW((void)est::EstimatorSpec::parse("sample_collide:l=10,l=20"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)est::EstimatorRegistry::global().build("sample_collide:l=10,l=20"),
      std::invalid_argument);
  EXPECT_NO_THROW(
      (void)est::EstimatorRegistry::global().build("sample_collide:l=10,T=2"));
}

TEST(SpecHardening, NetSpecRejectsDuplicateKeys) {
  EXPECT_THROW((void)sim::NetworkConfig::parse("net:loss=0.1,loss=0.2"),
               std::invalid_argument);
  EXPECT_NO_THROW((void)sim::NetworkConfig::parse("net:loss=0.1,jitter=1"));
}

TEST(SpecHardening, TopoSpecRejectsDuplicateKeys) {
  EXPECT_THROW(
      (void)topo::TopologyConfig::parse("topo:clustered,prop=0.1,prop=0.2"),
      std::invalid_argument);
  EXPECT_NO_THROW(
      (void)topo::TopologyConfig::parse("topo:clustered,prop=0.1,spread=10"));
}

TEST(SpecHardening, TraceSpecRejectsDuplicateKeys) {
  EXPECT_THROW(
      (void)trace::build_trace("weibull,shape=0.5,shape=0.7", 100),
      std::invalid_argument);
  EXPECT_NO_THROW(
      (void)trace::build_trace("weibull,shape=0.5,duration=10", 100));
}

TEST(SpecHardening, SetDefaultStillLayersUnderExplicitKeys) {
  // The harness injects paper defaults via set_default; an explicit key
  // must win WITHOUT tripping the duplicate check (set_default skips
  // present keys instead of appending a second occurrence).
  est::EstimatorSpec spec = est::EstimatorSpec::parse("sample_collide:l=10");
  spec.set_default("l", "200");
  spec.set_default("T", "10");
  EXPECT_EQ(spec.canonical(), "sample_collide:l=10,T=10");
  EXPECT_NO_THROW((void)est::EstimatorSpec::parse(spec.canonical()));
}

}  // namespace
}  // namespace p2pse
