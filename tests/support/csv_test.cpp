#include "p2pse/support/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace p2pse::support {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithComma) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  csv.row({std::vector<std::string>{"1", "2"}});
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, AppliesLinePrefix) {
  std::ostringstream out;
  CsvWriter csv(out, "# csv: ");
  csv.header({"a"});
  csv.row({std::vector<std::string>{"b"}});
  EXPECT_EQ(out.str(), "# csv: a\n# csv: b\n");
}

TEST(CsvWriter, NumericRowFormatting) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<double>{1.0, 2.5, 100000.0});
  EXPECT_EQ(out.str(), "1,2.5,100000\n");
}

TEST(FormatDouble, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(format_double(3.0), "3");
  EXPECT_EQ(format_double(-42.0), "-42");
  EXPECT_EQ(format_double(1000000.0), "1000000");
}

TEST(FormatDouble, FractionsKeepPrecision) {
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(0.125), "0.125");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace p2pse::support
