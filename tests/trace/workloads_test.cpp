// Trace workload registry + matrix integration: spec parsing is strict
// (unknown models/keys are hard errors), workload_by_name resolves scripts
// AND traces, every registry estimator runs against the trace workloads,
// and the report is byte-identical at any thread count (the acceptance
// gate for the trace subsystem).
#include "p2pse/trace/workloads.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "p2pse/est/registry.hpp"
#include "p2pse/harness/figures.hpp"
#include "p2pse/scenario/scenarios.hpp"

namespace p2pse::trace {
namespace {

TEST(TraceSpec, UnknownModelIsAHardError) {
  EXPECT_THROW((void)build_trace("weibul", 100), std::invalid_argument);
  EXPECT_THROW((void)build_trace("", 100), std::invalid_argument);
}

TEST(TraceSpec, UnknownKeyIsAHardError) {
  EXPECT_THROW((void)build_trace("weibull,shap=0.5", 100),
               std::invalid_argument);
  // Substrings of valid keys must not pass either.
  EXPECT_THROW((void)build_trace("weibull,ration=5", 100),
               std::invalid_argument);
  EXPECT_THROW((void)build_trace("exponential,shape=0.5", 100),
               std::invalid_argument);
}

TEST(TraceSpec, MalformedValuesAreHardErrors) {
  EXPECT_THROW((void)build_trace("weibull,shape=abc", 100),
               std::invalid_argument);
  EXPECT_THROW((void)build_trace("weibull,seed=1.5", 100),
               std::invalid_argument);
  EXPECT_THROW((void)build_trace("weibull,shape", 100),
               std::invalid_argument);
}

TEST(TraceSpec, KeysFlowIntoTheGenerator) {
  const ChurnTrace short_run = build_trace("exponential,duration=100", 200);
  EXPECT_DOUBLE_EQ(short_run.duration, 100.0);
  EXPECT_EQ(short_run.initial_sessions, 200u);
  const ChurnTrace a = build_trace("exponential,seed=3", 100);
  const ChurnTrace b = build_trace("exponential,seed=4", 100);
  EXPECT_NE(a.events.size(), b.events.size());
}

TEST(TraceSpec, EveryListedModelBuilds) {
  for (const TraceModelInfo& model : trace_model_infos()) {
    if (model.name == "file") continue;  // needs a path, covered below
    SCOPED_TRACE(std::string(model.name));
    const ChurnTrace trace =
        build_trace(std::string(model.name) + ",duration=50", 100);
    EXPECT_NO_THROW(trace.validate());
    EXPECT_EQ(trace.initial_sessions, 100u);
  }
}

TEST(TraceSpec, FileModelRoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "p2pse_workload_test.csv";
  const ChurnTrace original = build_trace("weibull,duration=100", 150);
  original.save_file(path);
  const ChurnTrace reloaded = build_trace("file=" + path, 9999);
  // The file's own initial size wins, not the caller's nodes.
  EXPECT_EQ(reloaded.initial_sessions, 150u);
  EXPECT_EQ(reloaded.events.size(), original.events.size());
}

TEST(TraceSpec, FileModelAcceptsPathsContainingCommas) {
  // file= consumes the whole remainder of the spec — a legal filename with
  // a comma must not be split by the key=value grammar.
  const std::string path = testing::TempDir() + "p2pse,comma,trace.csv";
  build_trace("exponential,duration=50", 80).save_file(path);
  const ChurnTrace reloaded = build_trace("file=" + path, 9999);
  EXPECT_EQ(reloaded.initial_sessions, 80u);
}

TEST(Workloads, WorkloadByNameResolvesScriptsAndTraces) {
  const auto script = scenario::workload_by_name("growing", 1000);
  EXPECT_EQ(script->name(), "growing");
  EXPECT_FALSE(script->initial_size().has_value());

  const auto traced = scenario::workload_by_name("trace:diurnal", 500);
  EXPECT_EQ(traced->name(), "trace:diurnal");
  ASSERT_TRUE(traced->initial_size().has_value());
  EXPECT_EQ(*traced->initial_size(), 500u);
  EXPECT_GT(traced->duration(), 0.0);

  EXPECT_THROW((void)scenario::workload_by_name("nope", 100),
               std::invalid_argument);
  EXPECT_THROW((void)scenario::workload_by_name("trace:nope", 100),
               std::invalid_argument);
}

harness::MatrixOptions trace_matrix(const std::string& estimator,
                                    const std::string& workload) {
  harness::MatrixOptions options;
  options.estimator = estimator;
  options.scenario = workload;
  // The trace workloads below run 200 time units: 0.5 rounds/unit = 100
  // gossip rounds = 2 epochs at the default 50-round epoch length.
  options.rounds_per_unit = 0.5;
  options.params.nodes = 300;
  options.params.estimations = 4;
  options.params.replicas = 2;
  options.params.seed = 9;
  options.params.threads = 2;
  return options;
}

// The ISSUE acceptance gate: every registered estimator crossed with the
// three trace workload families.
TEST(Workloads, EveryEstimatorRunsOnEveryTraceWorkloadFamily) {
  const char* workloads[] = {
      "trace:weibull,shape=0.5,duration=200",
      "trace:diurnal,amplitude=0.8,duration=200",
      "trace:flashcrowd,crowd_time=60,exodus_time=140,duration=200",
  };
  for (const auto& estimator : est::EstimatorRegistry::global().names()) {
    for (const char* workload : workloads) {
      SCOPED_TRACE(estimator + " x " + workload);
      const harness::FigureReport report =
          harness::run_matrix(trace_matrix(estimator, workload));
      ASSERT_EQ(report.series.size(), 3u);  // truth + 2 replicas
      EXPECT_FALSE(report.series[0].y.empty());
      EXPECT_FALSE(report.raw_rows.empty());
      for (const auto& row : report.raw_rows) {
        for (const double v : row) EXPECT_TRUE(std::isfinite(v));
      }
    }
  }
}

TEST(Workloads, MatrixReportIsByteIdenticalAcrossThreadCounts) {
  harness::MatrixOptions one = trace_matrix(
      "sample_collide:l=10", "trace:weibull,duration=200");
  one.params.replicas = 4;
  harness::MatrixOptions many = one;
  one.params.threads = 1;
  many.params.threads = 4;
  const harness::FigureReport a = harness::run_matrix(one);
  const harness::FigureReport b = harness::run_matrix(many);
  ASSERT_EQ(a.raw_rows.size(), b.raw_rows.size());
  for (std::size_t i = 0; i < a.raw_rows.size(); ++i) {
    for (std::size_t c = 0; c < a.raw_rows[i].size(); ++c) {
      EXPECT_EQ(a.raw_rows[i][c], b.raw_rows[i][c]);  // bit-exact
    }
  }
  EXPECT_EQ(a.params, b.params);
}

TEST(Workloads, FileTraceOverridesNodesInTheMatrix) {
  const std::string path = testing::TempDir() + "p2pse_matrix_replay.csv";
  build_trace("exponential,duration=100", 120).save_file(path);
  harness::MatrixOptions options =
      trace_matrix("random_tour", "trace:file=" + path);
  options.params.nodes = 5000;  // must be ignored in favor of the trace's 120
  const harness::FigureReport report = harness::run_matrix(options);
  ASSERT_FALSE(report.series[0].y.empty());
  EXPECT_NEAR(report.series[0].y.front(), 120.0, 30.0);
  EXPECT_NE(report.params.find("nodes=120"), std::string::npos)
      << report.params;
}

TEST(Workloads, TraceFigureSpecsAreRegistered) {
  for (const char* id : {"trace_weibull", "trace_diurnal",
                         "trace_flashcrowd"}) {
    SCOPED_TRACE(id);
    const harness::FigureSpec* spec = harness::find_figure(id);
    ASSERT_NE(spec, nullptr);
    harness::FigureParams params = spec->defaults;
    params.nodes = 250;
    params.estimations = 3;
    params.replicas = 2;
    const harness::FigureReport report = harness::run_figure(*spec, params);
    EXPECT_FALSE(report.series.empty());
    EXPECT_FALSE(report.raw_rows.empty());
  }
}

}  // namespace
}  // namespace p2pse::trace
