// ChurnTrace contract: validation edge cases (the hard-error list from the
// on-disk format doc), CSV round-trip exactness, and summary stats.
#include "p2pse/trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace p2pse::trace {
namespace {

using Kind = TraceEvent::Kind;

ChurnTrace small_trace() {
  ChurnTrace trace;
  trace.name = "hand";
  trace.duration = 100.0;
  trace.initial_sessions = 2;
  trace.events = {
      {10.0, Kind::kJoin, 2},
      {20.0, Kind::kLeave, 0},   // initial session departs
      {30.0, Kind::kLeave, 2},   // 20-unit session
      {40.0, Kind::kJoin, 3},    // right-censored (never leaves)
  };
  return trace;
}

TEST(ChurnTrace, EmptyTraceIsValid) {
  ChurnTrace trace;
  trace.duration = 50.0;
  trace.initial_sessions = 10;
  EXPECT_NO_THROW(trace.validate());
  const TraceSummary summary = trace.summarize();
  EXPECT_EQ(summary.joins, 0u);
  EXPECT_EQ(summary.leaves, 0u);
  EXPECT_EQ(summary.min_alive, 10u);
  EXPECT_EQ(summary.max_alive, 10u);
  EXPECT_EQ(summary.final_alive, 10u);
  EXPECT_DOUBLE_EQ(summary.mean_alive, 10.0);
  EXPECT_DOUBLE_EQ(summary.churn_rate, 0.0);
}

TEST(ChurnTrace, ValidTracePassesValidation) {
  EXPECT_NO_THROW(small_trace().validate());
}

TEST(ChurnTrace, RejectsNonPositiveDuration) {
  ChurnTrace trace;
  trace.duration = 0.0;
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, RejectsUnsortedTimestamps) {
  ChurnTrace trace = small_trace();
  std::swap(trace.events[0], trace.events[1]);
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, RejectsDuplicateTimestamps) {
  ChurnTrace trace = small_trace();
  trace.events[1].time = trace.events[0].time;  // ambiguous replay order
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, RejectsLeaveBeforeJoin) {
  ChurnTrace trace;
  trace.duration = 100.0;
  trace.initial_sessions = 1;
  trace.events = {{5.0, Kind::kLeave, 7}};  // session 7 never joined
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, RejectsDuplicateJoin) {
  ChurnTrace trace;
  trace.duration = 100.0;
  trace.events = {{1.0, Kind::kJoin, 0}, {2.0, Kind::kJoin, 0}};
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, RejectsJoinOfInitialSession) {
  ChurnTrace trace;
  trace.duration = 100.0;
  trace.initial_sessions = 3;
  trace.events = {{1.0, Kind::kJoin, 2}};  // id 2 is alive at t=0
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, RejectsDuplicateLeave) {
  ChurnTrace trace;
  trace.duration = 100.0;
  trace.initial_sessions = 1;
  trace.events = {{1.0, Kind::kLeave, 0}, {2.0, Kind::kLeave, 0}};
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, RejectsSessionIdReuse) {
  ChurnTrace trace;
  trace.duration = 100.0;
  trace.events = {{1.0, Kind::kJoin, 5},
                  {2.0, Kind::kLeave, 5},
                  {3.0, Kind::kJoin, 5}};  // one id = one session
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, RejectsEventsOutsideDuration) {
  ChurnTrace trace;
  trace.duration = 100.0;
  trace.events = {{100.5, Kind::kJoin, 0}};
  EXPECT_THROW(trace.validate(), std::invalid_argument);
  trace.events = {{-0.5, Kind::kJoin, 0}};
  EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(ChurnTrace, SizeTrajectoryFollowsEvents) {
  const auto trajectory = small_trace().size_trajectory();
  ASSERT_EQ(trajectory.size(), 5u);
  EXPECT_EQ(trajectory[0], (std::pair<double, std::size_t>{0.0, 2}));
  EXPECT_EQ(trajectory[1], (std::pair<double, std::size_t>{10.0, 3}));
  EXPECT_EQ(trajectory[2], (std::pair<double, std::size_t>{20.0, 2}));
  EXPECT_EQ(trajectory[3], (std::pair<double, std::size_t>{30.0, 1}));
  EXPECT_EQ(trajectory[4], (std::pair<double, std::size_t>{40.0, 2}));
}

TEST(ChurnTrace, SummaryCountsAndSessionLengths) {
  const TraceSummary summary = small_trace().summarize();
  EXPECT_EQ(summary.joins, 2u);
  EXPECT_EQ(summary.leaves, 2u);
  EXPECT_EQ(summary.min_alive, 1u);
  EXPECT_EQ(summary.max_alive, 3u);
  EXPECT_EQ(summary.final_alive, 2u);
  // Only session 2 completes inside the window (initial sessions are
  // left-censored, session 3 right-censored).
  EXPECT_EQ(summary.completed_sessions, 1u);
  EXPECT_DOUBLE_EQ(summary.mean_session_length, 20.0);
  EXPECT_DOUBLE_EQ(summary.median_session_length, 20.0);
  EXPECT_DOUBLE_EQ(summary.events_per_unit, 4.0 / 100.0);
}

TEST(ChurnTrace, CsvRoundTripIsExact) {
  ChurnTrace original = small_trace();
  original.events[0].time = 10.123456789012345;  // full-precision survives
  std::stringstream buffer;
  original.write_csv(buffer);
  const ChurnTrace reloaded = ChurnTrace::read_csv(buffer);
  EXPECT_EQ(reloaded.name, original.name);
  EXPECT_DOUBLE_EQ(reloaded.duration, original.duration);
  EXPECT_EQ(reloaded.initial_sessions, original.initial_sessions);
  ASSERT_EQ(reloaded.events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_EQ(reloaded.events[i].time, original.events[i].time);  // bit-exact
    EXPECT_EQ(reloaded.events[i].kind, original.events[i].kind);
    EXPECT_EQ(reloaded.events[i].session, original.events[i].session);
  }
}

TEST(ChurnTrace, ReadCsvRejectsMalformedInput) {
  const auto read = [](const std::string& text) {
    std::stringstream in(text);
    return ChurnTrace::read_csv(in);
  };
  // Wrong magic line.
  EXPECT_THROW((void)read("not a trace\n"), std::invalid_argument);
  // Missing metadata.
  EXPECT_THROW((void)read("# p2pse-trace v1\n"), std::invalid_argument);
  const std::string header =
      "# p2pse-trace v1\n# name: x\n# duration: 10\n"
      "# initial_sessions: 1\ntime,event,session\n";
  // Unknown event kind.
  EXPECT_THROW((void)read(header + "1,rejoin,0\n"), std::invalid_argument);
  // Wrong field count.
  EXPECT_THROW((void)read(header + "1,join\n"), std::invalid_argument);
  EXPECT_THROW((void)read(header + "1,join,0,9\n"), std::invalid_argument);
  // Malformed numbers.
  EXPECT_THROW((void)read(header + "abc,join,0\n"), std::invalid_argument);
  EXPECT_THROW((void)read(header + "1,join,xyz\n"), std::invalid_argument);
  // A parsed trace is also validated (leave before join here).
  EXPECT_THROW((void)read(header + "1,leave,5\n"), std::invalid_argument);
  // Well-formed input parses.
  EXPECT_NO_THROW((void)read(header + "1,join,1\n2,leave,1\n"));
}

TEST(ChurnTrace, LoadFileReportsMissingPath) {
  EXPECT_THROW((void)ChurnTrace::load_file("/nonexistent/trace.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace p2pse::trace
