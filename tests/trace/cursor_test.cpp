// TraceCursor replay contract: the overlay's alive count follows the
// trace's size trajectory exactly, leaves remove the very node the session
// joined as, and write -> load -> replay reproduces the same trajectory
// (the round-trip acceptance gate).
#include "p2pse/trace/cursor.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "p2pse/net/builders.hpp"
#include "p2pse/trace/generators.hpp"

namespace p2pse::trace {
namespace {

net::Graph overlay(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return net::build_heterogeneous_random({n, 1, 10}, rng);
}

ChurnTrace sample_trace(std::uint64_t initial, double duration = 200.0) {
  SessionWorkloadConfig config;
  config.initial_sessions = initial;
  config.duration = duration;
  config.lifetime.law = Lifetime::Law::kWeibull;
  config.lifetime.shape = 0.7;
  config.lifetime.scale = 40.0;
  return generate_sessions(config, support::RngStream(11));
}

TEST(TraceCursor, RequiresEnoughInitialNodes) {
  const ChurnTrace trace = sample_trace(300);
  net::Graph g = overlay(200, 1);
  EXPECT_THROW(TraceCursor(trace, g, {}, support::RngStream(2)),
               std::invalid_argument);
}

TEST(TraceCursor, GraphSizeFollowsTheTraceTrajectory) {
  const ChurnTrace trace = sample_trace(300);
  net::Graph g = overlay(300, 3);
  TraceCursor cursor(trace, g, {}, support::RngStream(4));
  // At every event boundary the alive count must equal the trajectory.
  for (const auto& [time, alive] : trace.size_trajectory()) {
    cursor.advance_to(time);
    EXPECT_EQ(g.size(), alive) << "at t=" << time;
  }
  cursor.advance_to(trace.duration);
  EXPECT_DOUBLE_EQ(cursor.now(), trace.duration);
}

TEST(TraceCursor, AdvanceIsIdempotentAndMonotone) {
  const ChurnTrace trace = sample_trace(100);
  net::Graph g = overlay(100, 5);
  TraceCursor cursor(trace, g, {}, support::RngStream(6));
  cursor.advance_to(50.0);
  const std::size_t at_50 = g.size();
  cursor.advance_to(50.0);  // re-advancing to the same time applies nothing
  EXPECT_EQ(g.size(), at_50);
  cursor.advance_to(10.0);  // going "backwards" is a no-op, not a rewind
  EXPECT_EQ(g.size(), at_50);
  EXPECT_DOUBLE_EQ(cursor.now(), 50.0);
}

TEST(TraceCursor, LeaveRemovesTheSessionsOwnNode) {
  ChurnTrace trace;
  trace.duration = 10.0;
  trace.initial_sessions = 0;
  trace.events = {{1.0, TraceEvent::Kind::kJoin, 0},
                  {2.0, TraceEvent::Kind::kJoin, 1},
                  {3.0, TraceEvent::Kind::kLeave, 0}};
  trace.validate();
  net::Graph g = overlay(20, 7);
  TraceCursor cursor(trace, g, {}, support::RngStream(8));
  cursor.advance_to(2.5);
  ASSERT_EQ(g.size(), 22u);
  // Ids 20 and 21 are the two joiners, in event order.
  EXPECT_TRUE(g.is_alive(20));
  EXPECT_TRUE(g.is_alive(21));
  cursor.advance_to(3.5);
  EXPECT_FALSE(g.is_alive(20));  // session 0's node, not a random victim
  EXPECT_TRUE(g.is_alive(21));
}

TEST(TraceCursor, RoundTripWriteLoadReplayReproducesTheTrajectory) {
  const ChurnTrace original = sample_trace(250);
  std::stringstream buffer;
  original.write_csv(buffer);
  const ChurnTrace reloaded = ChurnTrace::read_csv(buffer);

  net::Graph g1 = overlay(250, 9);
  net::Graph g2 = overlay(250, 9);
  TraceCursor c1(original, g1, {}, support::RngStream(10));
  TraceCursor c2(reloaded, g2, {}, support::RngStream(10));
  for (double t = 0.0; t <= original.duration; t += original.duration / 40) {
    c1.advance_to(t);
    c2.advance_to(t);
    ASSERT_EQ(g1.size(), g2.size()) << "trajectories diverged at t=" << t;
  }
  c1.advance_to(original.duration);
  c2.advance_to(original.duration);
  EXPECT_EQ(g1.size(), g2.size());
  EXPECT_EQ(g1.edge_count(), g2.edge_count());  // same wiring RNG stream
}

TEST(TraceCursor, ReplicasShareScheduleButNotWiring) {
  const ChurnTrace trace = sample_trace(200);
  net::Graph g1 = overlay(200, 12);
  net::Graph g2 = overlay(200, 13);  // different replica overlay
  TraceCursor c1(trace, g1, {}, support::RngStream(14));
  TraceCursor c2(trace, g2, {}, support::RngStream(15));
  c1.advance_to(trace.duration);
  c2.advance_to(trace.duration);
  // Identical membership schedule...
  EXPECT_EQ(g1.size(), g2.size());
  // ...but independent wiring randomness.
  EXPECT_NE(g1.edge_count(), g2.edge_count());
}

}  // namespace
}  // namespace p2pse::trace
