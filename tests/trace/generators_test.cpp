// Synthetic generator contract: every model emits a valid trace that is a
// pure function of (config, seed), with the statistical signature it
// advertises (heavy tails, diurnal swing, crowd/exodus shape). Golden
// summary stats pin the exact event counts at a fixed seed so accidental
// changes to the sampling stream are caught.
#include "p2pse/trace/generators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "p2pse/trace/workloads.hpp"

namespace p2pse::trace {
namespace {

support::RngStream seed(std::uint64_t s = 1) { return support::RngStream(s); }

TEST(Generators, SessionsTraceIsValidAndDeterministic) {
  SessionWorkloadConfig config;
  config.initial_sessions = 400;
  config.duration = 500.0;
  const ChurnTrace a = generate_sessions(config, seed());
  const ChurnTrace b = generate_sessions(config, seed());
  EXPECT_NO_THROW(a.validate());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].session, b.events[i].session);
  }
  const ChurnTrace c = generate_sessions(config, seed(2));
  EXPECT_NE(a.events.size(), c.events.size());  // different seed, different trace
}

TEST(Generators, ExponentialStationaryPopulationHoversAroundInitial) {
  SessionWorkloadConfig config;
  config.initial_sessions = 1000;
  config.duration = 1000.0;
  config.lifetime.mean_lifetime = 100.0;
  const TraceSummary summary =
      generate_sessions(config, seed()).summarize();
  // Default arrival rate is the stationary initial/mean = 10 per unit.
  EXPECT_NEAR(summary.mean_alive, 1000.0, 100.0);
  EXPECT_NEAR(summary.mean_session_length, 100.0, 20.0);
}

TEST(Generators, WeibullHeavyTailMedianWellBelowMean) {
  SessionWorkloadConfig config;
  config.initial_sessions = 1000;
  config.duration = 1000.0;
  config.lifetime.law = Lifetime::Law::kWeibull;
  config.lifetime.shape = 0.5;
  config.lifetime.scale = 50.0;
  const TraceSummary summary =
      generate_sessions(config, seed()).summarize();
  // Weibull(k=0.5): median = scale*ln(2)^2 ~ 0.24*scale, mean = 2*scale.
  EXPECT_LT(summary.median_session_length,
            0.5 * summary.mean_session_length);
  EXPECT_GT(summary.completed_sessions, 1000u);
}

TEST(Generators, ParetoWithoutFiniteMeanNeedsExplicitArrivalRate) {
  SessionWorkloadConfig config;
  config.lifetime.law = Lifetime::Law::kPareto;
  config.lifetime.shape = 0.9;  // alpha <= 1: infinite mean
  EXPECT_THROW((void)generate_sessions(config, seed()),
               std::invalid_argument);
  config.arrival_rate = 5.0;  // explicit rate sidesteps the mean
  config.duration = 100.0;
  config.initial_sessions = 100;
  EXPECT_NO_THROW((void)generate_sessions(config, seed()));
}

TEST(Generators, DiurnalArrivalsFollowTheSine) {
  DiurnalConfig config;
  config.initial_sessions = 2000;
  config.duration = 1000.0;
  config.period = 1000.0;  // one full day over the run
  config.amplitude = 1.0;
  config.mean_lifetime = 50.0;
  const ChurnTrace trace = generate_diurnal(config, seed());
  EXPECT_NO_THROW(trace.validate());
  // Joins in the first half (rising sine, rate up to 2x base) must clearly
  // outnumber joins in the second half (rate down to 0).
  std::size_t first_half = 0, second_half = 0;
  for (const TraceEvent& event : trace.events) {
    if (event.kind != TraceEvent::Kind::kJoin) continue;
    (event.time < 500.0 ? first_half : second_half) += 1;
  }
  EXPECT_GT(first_half, 2 * second_half);
}

TEST(Generators, FlashCrowdSwellsThenExodusDrops) {
  FlashCrowdConfig config;
  config.initial_sessions = 1000;
  config.duration = 1000.0;
  config.crowd_time = 300.0;
  config.crowd_fraction = 1.0;
  config.exodus_time = 700.0;
  config.exodus_fraction = 0.5;
  const ChurnTrace trace = generate_flash_crowd(config, seed());
  EXPECT_NO_THROW(trace.validate());
  // Population just before the crowd, at the crowd peak, and across the
  // exodus instant.
  std::size_t before_crowd = 0, peak = 0, before_exodus = 0, after_exodus = 0;
  for (const auto& [time, alive] : trace.size_trajectory()) {
    if (time <= config.crowd_time) before_crowd = alive;
    if (time <= config.crowd_time + config.crowd_ramp) {
      peak = std::max(peak, alive);
    }
    if (time < config.exodus_time) before_exodus = alive;
    if (time <= config.exodus_time + 1e-6 || after_exodus == 0) {
      after_exodus = alive;
    }
  }
  // ~1000 short-lived visitors arrive within the 20-unit ramp.
  EXPECT_GT(peak, before_crowd + 600);
  // The exodus removes about half the survivors instantaneously.
  EXPECT_LT(after_exodus, static_cast<std::size_t>(
                              0.65 * static_cast<double>(before_exodus)));
}

TEST(Generators, ConfigValidation) {
  SessionWorkloadConfig sessions;
  sessions.duration = -1.0;
  EXPECT_THROW((void)generate_sessions(sessions, seed()),
               std::invalid_argument);

  DiurnalConfig diurnal;
  diurnal.amplitude = 1.5;
  EXPECT_THROW((void)generate_diurnal(diurnal, seed()),
               std::invalid_argument);
  diurnal.amplitude = 0.5;
  diurnal.period = 0.0;
  EXPECT_THROW((void)generate_diurnal(diurnal, seed()),
               std::invalid_argument);

  FlashCrowdConfig crowd;
  crowd.exodus_fraction = 2.0;
  EXPECT_THROW((void)generate_flash_crowd(crowd, seed()),
               std::invalid_argument);
  crowd.exodus_fraction = 0.2;
  crowd.crowd_time = 5000.0;  // outside [0, duration)
  EXPECT_THROW((void)generate_flash_crowd(crowd, seed()),
               std::invalid_argument);
}

// Golden summary stats: every synthetic model at a fixed seed, through the
// same spec path the CLI uses. The exact event counts pin the sampling
// stream — any accidental reordering of RNG draws or change to a default
// knob shows up here before it silently shifts every figure.
TEST(Generators, GoldenSummariesAtFixedSeed) {
  struct Golden {
    const char* spec;
    std::size_t joins, leaves, min_alive, max_alive, final_alive;
    double median_session;
  };
  const Golden goldens[] = {
      {"exponential,duration=400,seed=5", 3186, 3192, 759, 840, 794, 49.53},
      {"weibull,duration=400,seed=5", 3186, 3306, 514, 800, 680, 12.99},
      {"pareto,duration=400,seed=5", 5355, 5428, 569, 1073, 727, 30.44},
      {"diurnal,duration=400,seed=5", 3592, 3505, 650, 1073, 887, 49.52},
      {"flashcrowd,duration=400,seed=5", 2386, 2516, 535, 1512, 670, 56.80},
  };
  for (const Golden& golden : goldens) {
    SCOPED_TRACE(golden.spec);
    const TraceSummary summary = build_trace(golden.spec, 800).summarize();
    EXPECT_EQ(summary.joins, golden.joins);
    EXPECT_EQ(summary.leaves, golden.leaves);
    EXPECT_EQ(summary.min_alive, golden.min_alive);
    EXPECT_EQ(summary.max_alive, golden.max_alive);
    EXPECT_EQ(summary.final_alive, golden.final_alive);
    EXPECT_NEAR(summary.median_session_length, golden.median_session, 0.01);
  }
}

TEST(Generators, ExodusAtTheVeryEndDoesNotOverflowDuration) {
  // Regression: the strict-monotonicity epsilon nudges on a mass exodus one
  // ulp before the end of the run used to push the batch past `duration`
  // and fail validation. The overflow suffix is right-censored instead.
  FlashCrowdConfig config;
  config.initial_sessions = 20000;
  config.duration = 200.0;
  config.crowd_time = 60.0;
  config.exodus_time = 199.9999999;
  config.exodus_fraction = 1.0;
  const ChurnTrace trace = generate_flash_crowd(config, seed());
  EXPECT_NO_THROW(trace.validate());
  for (const TraceEvent& event : trace.events) {
    EXPECT_LE(event.time, trace.duration);
  }
}

TEST(Generators, ZeroInitialSessionsBootstrapsFromArrivalsOnly) {
  SessionWorkloadConfig config;
  config.initial_sessions = 0;
  config.duration = 200.0;
  config.arrival_rate = 2.0;
  const ChurnTrace trace = generate_sessions(config, seed());
  EXPECT_NO_THROW(trace.validate());
  const TraceSummary summary = trace.summarize();
  EXPECT_EQ(summary.initial_sessions, 0u);
  EXPECT_GT(summary.joins, 100u);  // ~400 expected
}

TEST(Lifetime, SampleFromMatchesScalarSampleBitwise) {
  // sample(rng) must equal sample_from(rng.uniform_real()) bit-for-bit —
  // the property that lets the generators batch their initial-lifetime
  // draws (fill_uniform + sample_from) without moving any golden trace.
  Lifetime exponential;
  Lifetime weibull;
  weibull.law = Lifetime::Law::kWeibull;
  weibull.shape = 0.5;
  weibull.scale = 120.0;
  Lifetime pareto;
  pareto.law = Lifetime::Law::kPareto;
  pareto.shape = 1.5;
  pareto.scale = 10.0;
  for (const Lifetime& law : {exponential, weibull, pareto}) {
    support::RngStream scalar(4242);
    support::RngStream batched(4242);
    for (int i = 0; i < 500; ++i) {
      const double direct = law.sample(scalar);
      const double transformed = law.sample_from(batched.uniform_real());
      EXPECT_EQ(direct, transformed);
    }
  }
}

}  // namespace
}  // namespace p2pse::trace
