// Loss-free regression lock: an explicit all-ideal `net:` spec must route
// every message through sim::Channel and still reproduce the pre-channel
// reports byte-for-byte — at the figure level (fig01/fig05, the same rows
// golden_report_test pins against the seed implementation) and at the
// cursor level (ScenarioRunner trajectories with and without an installed
// channel). Plus the driver-facing `net:` spec hardening.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "p2pse/est/estimator.hpp"
#include "p2pse/harness/figures.hpp"
#include "p2pse/net/builders.hpp"
#include "p2pse/scenario/runner.hpp"
#include "p2pse/scenario/scenarios.hpp"

namespace p2pse::harness {
namespace {

std::string render(const FigureReport& report) {
  std::ostringstream out;
  print_report(out, report);
  return out.str();
}

FigureParams small_params(std::string_view figure) {
  FigureParams params = find_figure(figure)->defaults;
  params.nodes = 800;
  params.estimations = 8;
  params.replicas = 2;
  params.seed = 7;
  params.threads = 2;
  return params;
}

TEST(ChannelGolden, Fig01IdenticalThroughAnExplicitIdealChannel) {
  const FigureParams bare = small_params("fig01");
  FigureParams routed = bare;
  routed.net = "net:loss=0,latency=constant:0";
  EXPECT_EQ(render(run_figure("fig01", routed)),
            render(run_figure("fig01", bare)));
}

TEST(ChannelGolden, Fig05IdenticalThroughAnExplicitIdealChannel) {
  const FigureParams bare = small_params("fig05");
  FigureParams routed = bare;
  routed.net = "net:loss=0,latency=constant:0";
  EXPECT_EQ(render(run_figure("fig05", routed)),
            render(run_figure("fig05", bare)));
}

TEST(ChannelGolden, MatrixIdenticalThroughAnExplicitIdealChannel) {
  MatrixOptions bare;
  bare.estimator = "random_tour";
  bare.scenario = "oscillating";
  bare.params.nodes = 500;
  bare.params.estimations = 5;
  bare.params.replicas = 2;
  bare.params.seed = 7;
  MatrixOptions routed = bare;
  routed.params.net = "net:loss=0,latency=constant:0";
  EXPECT_EQ(render(run_matrix(routed)), render(run_matrix(bare)));
}

// Cursor-level lock: the runner's per-replica trajectory (churn cursor,
// initiator redraws, estimator stream) must be identical whether the sim
// keeps its default channel or has an explicitly-ideal one installed.
TEST(ChannelGolden, RunnerPointTrajectoriesEqualWithIdealChannel) {
  const scenario::ScenarioRunner runner(
      scenario::script_by_name("catastrophic", 600),
      [](support::RngStream& rng) {
        return net::build_heterogeneous_random({600, 1, 10}, rng);
      },
      21);
  const est::SampleCollideEstimator proto({.timer = 4.0, .collisions = 20});
  const scenario::ScenarioRunner::RunOptions bare{.estimations = 10};
  scenario::ScenarioRunner::RunOptions routed = bare;
  routed.network = sim::NetworkConfig::parse("net:loss=0,latency=constant:0");
  const scenario::Series a = runner.run(proto, bare, 0);
  const scenario::Series b = runner.run(proto, routed, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_DOUBLE_EQ(a[i].truth, b[i].truth);
    EXPECT_DOUBLE_EQ(a[i].estimate, b[i].estimate);
    EXPECT_EQ(a[i].valid, b[i].valid);
    EXPECT_EQ(a[i].messages, b[i].messages);
    EXPECT_DOUBLE_EQ(a[i].delay, b[i].delay);
  }
}

TEST(ChannelGolden, RunnerEpochTrajectoriesEqualWithIdealChannel) {
  const scenario::ScenarioRunner runner(
      scenario::script_by_name("shrinking", 400),
      [](support::RngStream& rng) {
        return net::build_heterogeneous_random({400, 1, 10}, rng);
      },
      21);
  const est::AggregationEstimator proto({.rounds_per_epoch = 20});
  const scenario::ScenarioRunner::RunOptions bare{.estimations = 0,
                                                  .rounds_per_unit = 0.1};
  scenario::ScenarioRunner::RunOptions routed = bare;
  routed.network = sim::NetworkConfig::parse("net:loss=0,latency=constant:0");
  const scenario::Series a = runner.run(proto, bare, 0);
  const scenario::Series b = runner.run(proto, routed, 0);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].estimate, b[i].estimate);
    EXPECT_EQ(a[i].messages, b[i].messages);
  }
}

TEST(ChannelGolden, NonIdealChannelIsDeclaredInTheParamsLine) {
  MatrixOptions options;
  options.estimator = "random_tour";
  options.scenario = "static";
  options.params.nodes = 300;
  options.params.estimations = 3;
  options.params.replicas = 1;
  options.params.net = "net:loss=0.1,latency=exp:5";
  const FigureReport report = run_matrix(options);
  EXPECT_NE(report.params.find("net:loss=0.1,latency=exp:5"),
            std::string::npos);
  // An ideal spec must leave the params line untouched (byte-identity).
  options.params.net = "net:loss=0,latency=constant:0";
  EXPECT_EQ(run_matrix(options).params.find("net:"), std::string::npos);
}

// --- `net:` spec hardening at the harness surface ---------------------------

TEST(ChannelGolden, MalformedNetSpecIsAHardErrorInFigures) {
  FigureParams params = small_params("fig01");
  params.net = "net:loss=2";
  EXPECT_THROW((void)run_figure("fig01", params), std::invalid_argument);
  params.net = "net:latency=zipf:3";
  EXPECT_THROW((void)run_figure("fig01", params), std::invalid_argument);
}

TEST(ChannelGolden, MalformedNetSpecIsAHardErrorInTheMatrix) {
  MatrixOptions options;
  options.estimator = "random_tour";
  options.scenario = "static";
  options.params.nodes = 200;
  options.params.net = "net:timeout=0";
  EXPECT_THROW((void)run_matrix(options), std::invalid_argument);
  options.params.net = "net:drop=0.1";
  EXPECT_THROW((void)run_matrix(options), std::invalid_argument);
}

TEST(ChannelGolden, FiguresWithoutChannelRoutingRejectANonIdealNet) {
  // Generators that drive their own simulators without routing --net must
  // hard-error on a non-ideal spec rather than silently run the ideal
  // channel (the no-silent-fallback rule). An ideal spec stays accepted.
  for (const std::string_view figure :
       {"ablation_delay", "ablation_polling", "table1",
        "ext_loss_accuracy"}) {
    FigureParams params = find_figure(figure)->defaults;
    params.nodes = 200;
    params.estimations = 1;
    params.net = "net:loss=0.1";
    EXPECT_THROW((void)run_figure(figure, params), std::invalid_argument)
        << figure << " silently ignored --net";
  }
}

TEST(ChannelGolden, ChannellessEstimatorsRejectANonIdealNetInTheMatrix) {
  // interval_density reads local leafset state and never routes traffic
  // through the channel: the matrix/trace path must reject a non-ideal
  // --net for it rather than label loss-free numbers as lossy results.
  MatrixOptions options;
  options.estimator = "interval_density";
  options.scenario = "static";
  options.params.nodes = 200;
  options.params.estimations = 2;
  options.params.replicas = 1;
  options.params.net = "net:loss=0.05,latency=exp:5";
  EXPECT_THROW((void)run_matrix(options), std::invalid_argument);
  // The ideal spec (and no spec) keep working.
  options.params.net = "net:loss=0,latency=constant:0";
  EXPECT_NO_THROW((void)run_matrix(options));
}

TEST(ChannelGolden, LossSweepFiguresRunAtReducedScale) {
  FigureParams params = find_figure("ext_loss_accuracy")->defaults;
  params.nodes = 300;
  params.estimations = 2;
  params.threads = 2;
  const FigureReport report = run_figure("ext_loss_accuracy", params);
  // 5 candidates x 3 loss rates.
  EXPECT_EQ(report.table_rows.size(), 15u);
  const FigureReport delay = run_figure("ext_loss_delay", params);
  EXPECT_EQ(delay.table_rows.size(), 15u);
}

TEST(ChannelGolden, LossSweepFiguresAreThreadCountInvariant) {
  FigureParams params = find_figure("ext_loss_accuracy")->defaults;
  params.nodes = 300;
  params.estimations = 2;
  params.threads = 1;
  const std::string one = render(run_figure("ext_loss_accuracy", params));
  params.threads = 8;
  EXPECT_EQ(render(run_figure("ext_loss_accuracy", params)), one);
}

}  // namespace
}  // namespace p2pse::harness
