// Smoke-level reproduction of every figure generator at reduced scale.
// Full-scale runs live in bench/; these tests assert the generators run,
// produce non-empty series/tables, and that headline shapes hold. All
// generators are reached through the declarative spec table (run_figure),
// exactly as the bench binaries reach them.
#include "p2pse/harness/figures.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace p2pse::harness {
namespace {

FigureParams small_params() {
  FigureParams p;
  p.nodes = 3000;
  p.seed = 7;
  p.estimations = 12;
  p.replicas = 2;
  p.sc_collisions = 30;
  p.agg_rounds = 40;
  p.last_k = 5;
  return p;
}

double series_mean(const support::Series& s) {
  double acc = 0.0;
  for (const double v : s.y) acc += v;
  return s.y.empty() ? 0.0 : acc / static_cast<double>(s.y.size());
}

TEST(FigureSpecs, TableCoversEveryPaperFigureAndAblation) {
  EXPECT_GE(figure_specs().size(), 31u);
  for (const auto& spec : figure_specs()) {
    EXPECT_NE(spec.generate, nullptr) << spec.id;
    EXPECT_FALSE(spec.what.empty()) << spec.id;
  }
  EXPECT_NE(find_figure("fig01"), nullptr);
  EXPECT_NE(find_figure("fig18"), nullptr);
  EXPECT_NE(find_figure("table1"), nullptr);
  EXPECT_EQ(find_figure("fig99"), nullptr);
}

TEST(FigureSpecs, UnknownIdThrowsListingKnownIds) {
  try {
    (void)run_figure("fig99", small_params());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fig01"), std::string::npos);
  }
}

TEST(Figures, ScStaticProducesTwoSeriesNearHundred) {
  const FigureReport r = run_figure("fig01", small_params());
  ASSERT_EQ(r.series.size(), 2u);
  EXPECT_EQ(r.series[0].y.size(), 12u);
  EXPECT_NEAR(series_mean(r.series[0]), 100.0, 30.0);
  EXPECT_NEAR(series_mean(r.series[1]), 100.0, 20.0);
  EXPECT_FALSE(r.notes.empty());
}

TEST(Figures, ScStaticRecordsRawSeriesForCsvExport) {
  FigureParams p = small_params();
  p.estimations = 5;
  const FigureReport r = run_figure("fig01", p);
  ASSERT_EQ(r.raw_columns.size(), 6u);
  EXPECT_EQ(r.raw_columns[0], "replica");
  EXPECT_EQ(r.raw_columns[5], "valid");
  // replicas x estimations rows, each
  // (replica, index, truth, estimate, msgs, valid).
  EXPECT_EQ(r.raw_rows.size(), p.replicas * p.estimations);
  for (const auto& row : r.raw_rows) {
    ASSERT_EQ(row.size(), 6u);
    EXPECT_GT(row[4], 0.0);  // every estimate costs messages
    EXPECT_EQ(row[5], 1.0);  // static overlay: every estimate is valid
  }
}

TEST(Figures, HsStaticUnderestimates) {
  FigureParams p = small_params();
  p.estimations = 15;
  const FigureReport r = run_figure("fig03", p);
  ASSERT_EQ(r.series.size(), 2u);
  EXPECT_LT(series_mean(r.series[0]), 105.0);
  EXPECT_GT(series_mean(r.series[0]), 40.0);
}

TEST(Figures, AggStaticConvergesToHundred) {
  FigureParams p = small_params();
  p.estimations = 60;  // rounds
  const FigureReport r = run_figure("fig05", p);
  ASSERT_EQ(r.series.size(), p.replicas);
  for (const auto& s : r.series) {
    ASSERT_GE(s.y.size(), 50u);
    EXPECT_NEAR(s.y.back(), 100.0, 3.0);  // converged by the last round
    EXPECT_LT(s.y.front(), 50.0);         // far from converged at round 1
  }
}

TEST(Figures, ScaleFreeDegreesReportsPowerLaw) {
  const FigureReport r = run_figure("fig07", small_params());
  ASSERT_EQ(r.series.size(), 1u);
  EXPECT_GT(r.series[0].x.size(), 10u);
  EXPECT_TRUE(r.plot.log_x);
  EXPECT_TRUE(r.plot.log_y);
}

TEST(Figures, ScaleFreeCompareHasThreeSeries) {
  FigureParams p = small_params();
  p.estimations = 6;
  const FigureReport r = run_figure("fig08", p);
  ASSERT_EQ(r.series.size(), 3u);
  for (const auto& s : r.series) EXPECT_EQ(s.y.size(), 6u);
  // Aggregation stays accurate on scale-free graphs.
  EXPECT_NEAR(series_mean(r.series[2]), 100.0, 10.0);
}

TEST(Figures, ScDynamicAllKinds) {
  FigureParams p = small_params();
  p.estimations = 10;
  for (const auto id : {"fig09", "fig10", "fig11"}) {
    const FigureReport r = run_figure(id, p);
    ASSERT_EQ(r.series.size(), 1u + p.replicas);  // truth + replicas
    EXPECT_EQ(r.series[0].name, "Real network size");
    EXPECT_EQ(r.series[0].y.size(), 10u);
  }
}

TEST(Figures, ScDynamicTracksShrinkage) {
  FigureParams p = small_params();
  p.estimations = 10;
  p.replicas = 1;
  const FigureReport r = run_figure("fig11", p);
  const auto& truth = r.series[0].y;
  const auto& est = r.series[1].y;
  ASSERT_GE(est.size(), 8u);
  // Later estimates must be visibly smaller than early ones.
  EXPECT_LT(est.back(), est.front());
  EXPECT_NEAR(est.back(), truth.back(), 0.5 * truth.back());
}

TEST(Figures, HsDynamicRuns) {
  FigureParams p = small_params();
  p.estimations = 10;
  const FigureReport r = run_figure("fig13", p);
  ASSERT_EQ(r.series.size(), 1u + p.replicas);
  EXPECT_EQ(r.series[1].y.size(), 10u);
}

TEST(Figures, AggDynamicRuns) {
  FigureParams p = small_params();
  p.nodes = 1500;
  p.agg_rounds = 25;
  const FigureReport r = run_figure("fig16", p);
  ASSERT_EQ(r.series.size(), 1u + p.replicas);
  // 10 rounds/unit * 1000 units / 25 rounds per epoch = 400 epochs.
  EXPECT_GT(r.series[1].y.size(), 100u);
}

TEST(Figures, Table1HasFourRows) {
  FigureParams p = small_params();
  p.estimations = 6;
  const FigureReport r = run_figure("table1", p);
  EXPECT_TRUE(r.series.empty());
  ASSERT_EQ(r.table_rows.size(), 4u);
  ASSERT_EQ(r.table_columns.size(), 8u);
  EXPECT_EQ(r.table_columns[5], "overhead (bytes)");
  EXPECT_EQ(r.table_columns[6], "max node load");
  // Each row carries a non-empty bytes and max-load cell.
  for (const auto& row : r.table_rows) {
    ASSERT_EQ(row.size(), 8u);
    EXPECT_FALSE(row[5].empty());
    EXPECT_FALSE(row[6].empty());
  }
}

TEST(Figures, AblationLSweepShowsSublinearCost) {
  FigureParams p = small_params();
  p.estimations = 3;
  const FigureReport r = run_figure("ablation_sc_l_sweep", p);
  ASSERT_EQ(r.table_rows.size(), 4u);
  // Cost ratio l=200 vs l=10 must be far below 20x (sqrt scaling).
  const double ratio = std::stod(r.table_rows.back()[3]);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 8.0);
}

TEST(Figures, AblationTimerSweepShowsBiasDecay) {
  FigureParams p = small_params();
  p.nodes = 400;
  const FigureReport r = run_figure("ablation_sc_timer_sweep", p);
  ASSERT_EQ(r.table_rows.size(), 5u);
  const double chi_small_t = std::stod(r.table_rows.front()[1]);
  const double chi_large_t = std::stod(r.table_rows.back()[1]);
  EXPECT_LT(chi_large_t, chi_small_t);
  EXPECT_LT(chi_large_t, 1.5);
}

TEST(Figures, AblationOracleRemovesBias) {
  FigureParams p = small_params();
  p.estimations = 10;
  const FigureReport r = run_figure("ablation_hs_oracle", p);
  ASSERT_EQ(r.table_rows.size(), 2u);
  const double gossip_err = std::stod(r.table_rows[0][1]);
  const double oracle_err = std::stod(r.table_rows[1][1]);
  EXPECT_LT(std::abs(oracle_err), std::abs(gossip_err));
  // Oracle coverage is 100%.
  EXPECT_NEAR(std::stod(r.table_rows[1][3]), 100.0, 0.5);
}

TEST(Figures, AblationEstimatorsProducesBothRows) {
  FigureParams p = small_params();
  p.estimations = 4;
  const FigureReport r = run_figure("ablation_estimators", p);
  ASSERT_EQ(r.table_rows.size(), 2u);
  EXPECT_EQ(r.table_rows[0][0], "quadratic");
  EXPECT_EQ(r.table_rows[1][0], "MLE");
}

TEST(Figures, AblationHomogeneousCoversBothOverlays) {
  FigureParams p = small_params();
  p.estimations = 4;
  const FigureReport r = run_figure("ablation_homogeneous", p);
  ASSERT_EQ(r.table_rows.size(), 6u);  // 2 overlays x 3 algorithms
}

TEST(Figures, AblationBaselinesCoversBothGraphs) {
  FigureParams p = small_params();
  p.nodes = 1500;
  p.estimations = 4;
  const FigureReport r = run_figure("ablation_baselines", p);
  ASSERT_EQ(r.table_rows.size(), 6u);  // 2 graphs x 3 algorithms
}

TEST(Figures, AblationCyclonShowsHealing) {
  FigureParams p = small_params();
  const FigureReport r = run_figure("ablation_cyclon", p);
  ASSERT_EQ(r.table_rows.size(), 2u);
  const double static_largest = std::stod(r.table_rows[0][1]);
  const double cyclon_largest = std::stod(r.table_rows[1][1]);
  EXPECT_GE(cyclon_largest, static_largest);
  EXPECT_GT(cyclon_largest, 99.5);
  // Healed overlay -> near-exact Aggregation.
  EXPECT_LT(std::stod(r.table_rows[1][3]), 2.0);
}

TEST(Figures, AblationDelayRanksHopsSamplingFirst) {
  FigureParams p = small_params();
  p.sc_collisions = 20;
  const FigureReport r = run_figure("ablation_delay", p);
  ASSERT_EQ(r.table_rows.size(), 3u);
  const double hs = std::stod(r.table_rows[0][1]);
  const double agg = std::stod(r.table_rows[1][1]);
  const double sc = std::stod(r.table_rows[2][1]);
  EXPECT_LT(hs, agg);
  EXPECT_LT(agg, sc);
}

TEST(Figures, AblationStructuredIsCheapest) {
  FigureParams p = small_params();
  p.estimations = 6;
  const FigureReport r = run_figure("ablation_structured", p);
  ASSERT_EQ(r.table_rows.size(), 3u);
  EXPECT_EQ(r.table_rows[0][1], "structured overlays only");
}

TEST(Figures, AblationPollingShowsReplyImplosion) {
  FigureParams p = small_params();
  p.estimations = 4;
  const FigureReport r = run_figure("ablation_polling", p);
  ASSERT_EQ(r.table_rows.size(), 4u);
  // Flat p=0.25 replies >> HopsSampling replies.
  EXPECT_GT(std::stod(r.table_rows[2][3]), std::stod(r.table_rows[3][3]));
}

TEST(Figures, AblationSamplersOrdersUniformity) {
  FigureParams p = small_params();
  p.nodes = 600;
  const FigureReport r = run_figure("ablation_samplers", p);
  ASSERT_EQ(r.table_rows.size(), 3u);
  const double twalk = std::stod(r.table_rows[0][1]);
  const double naive = std::stod(r.table_rows[2][1]);
  EXPECT_LT(twalk, 1.5);
  EXPECT_GT(naive, 2.0);
}

TEST(Figures, AblationOscillatingTracksBothAlgorithms) {
  FigureParams p = small_params();
  p.nodes = 2000;
  p.estimations = 20;
  p.sc_collisions = 30;
  p.agg_rounds = 30;
  const FigureReport r = run_figure("ablation_oscillating", p);
  ASSERT_EQ(r.series.size(), 3u);
  EXPECT_EQ(r.series[0].name, "Real network size");
  EXPECT_EQ(r.series[0].y.size(), 20u);
  EXPECT_GT(r.series[2].y.size(), 10u);  // aggregation epochs
}

TEST(Figures, ReportsPrintWithoutCrashing) {
  FigureParams p = small_params();
  p.estimations = 4;
  std::ostringstream out;
  print_report(out, run_figure("fig01", p));
  print_report(out, run_figure("table1", p));
  EXPECT_GT(out.str().size(), 200u);
}

}  // namespace
}  // namespace p2pse::harness
