// The estimator x scenario matrix: every registered estimator must smoke-run
// under every named scenario at N=500 through run_matrix — including the
// combinations the paper never plotted. This is the acceptance gate for the
// `p2pse_matrix` driver.
#include "p2pse/harness/figures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "p2pse/est/registry.hpp"
#include "p2pse/scenario/scenarios.hpp"

namespace p2pse::harness {
namespace {

MatrixOptions small_matrix(const std::string& estimator,
                           const std::string& scenario) {
  MatrixOptions options;
  options.estimator = estimator;
  options.scenario = scenario;
  // Epoch estimators: 0.1 rounds/unit * 1000 units = 100 rounds = 2 epochs
  // at the default 50-round epoch length.
  options.rounds_per_unit = 0.1;
  options.params.nodes = 500;
  options.params.estimations = 4;
  options.params.replicas = 2;
  options.params.seed = 9;
  options.params.threads = 2;
  return options;
}

TEST(Matrix, EveryEstimatorCrossesEveryScenario) {
  for (const auto& estimator : est::EstimatorRegistry::global().names()) {
    for (const auto scenario : scenario::scenario_names()) {
      SCOPED_TRACE(estimator + " x " + std::string(scenario));
      const FigureReport report =
          run_matrix(small_matrix(estimator, std::string(scenario)));
      // Truth line + one series per replica.
      ASSERT_EQ(report.series.size(), 3u);
      EXPECT_EQ(report.series[0].name, "Real network size");
      EXPECT_FALSE(report.series[0].y.empty());
      EXPECT_FALSE(report.raw_rows.empty());
      for (const auto& row : report.raw_rows) {
        ASSERT_EQ(row.size(), 6u);  // replica,time,truth,estimate,msgs,valid
        for (const double v : row) EXPECT_TRUE(std::isfinite(v));
      }
      EXPECT_NE(report.id.find(est::EstimatorSpec::parse(estimator).name),
                std::string::npos);
    }
  }
}

TEST(Matrix, PointEstimatorEmitsOnePointPerEstimation) {
  const FigureReport report =
      run_matrix(small_matrix("random_tour", "growing"));
  // 2 replicas x 4 estimations.
  EXPECT_EQ(report.raw_rows.size(), 8u);
}

TEST(Matrix, EpochEstimatorEmitsOnePointPerEpoch) {
  MatrixOptions options = small_matrix("aggregation:rounds=20", "static");
  options.rounds_per_unit = 0.1;  // 100 rounds -> 5 epochs
  const FigureReport report = run_matrix(options);
  EXPECT_EQ(report.raw_rows.size(), 2u * 5u);
}

TEST(Matrix, OffPaperCombinationTracksTruth) {
  // Interval density under oscillating flash crowds: the identifier ring is
  // rebuilt as membership changes, so the estimate keeps tracking.
  MatrixOptions options = small_matrix("interval_density", "oscillating");
  options.params.estimations = 10;
  const FigureReport report = run_matrix(options);
  const auto& truth = report.series[0].y;
  const auto& estimate = report.series[1].y;
  ASSERT_EQ(estimate.size(), 10u);
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    EXPECT_NEAR(estimate[i], truth[i], 0.75 * truth[i]);
  }
}

TEST(Matrix, ReportDescribesTheBuiltEstimatorNotThePaperDefaults) {
  // A spec override must flow into the report metadata: l=10 here, not the
  // FigureParams default l=200.
  const FigureReport sc = run_matrix(small_matrix("sample_collide:l=10",
                                                  "static"));
  EXPECT_NE(sc.params.find("l=10"), std::string::npos) << sc.params;
  EXPECT_EQ(sc.params.find("l=200"), std::string::npos) << sc.params;

  // Un-smoothed HopsSampling must not be labeled lastKruns.
  const FigureReport hs = run_matrix(small_matrix("hops_sampling", "static"));
  EXPECT_NE(hs.title.find("oneShot"), std::string::npos) << hs.title;
  const FigureReport hs_smooth =
      run_matrix(small_matrix("hops_sampling:last_k=4", "static"));
  EXPECT_NE(hs_smooth.title.find("last4runs"), std::string::npos)
      << hs_smooth.title;

  MatrixOptions agg = small_matrix("aggregation:rounds=20", "static");
  const FigureReport agg_report = run_matrix(agg);
  EXPECT_NE(agg_report.title.find("20-round epochs"), std::string::npos)
      << agg_report.title;
  EXPECT_NE(agg_report.params.find("rounds_per_epoch=20"), std::string::npos)
      << agg_report.params;
}

TEST(Matrix, UnknownEstimatorOrScenarioIsAHardError) {
  EXPECT_THROW((void)run_matrix(small_matrix("sample_colide", "static")),
               std::invalid_argument);
  EXPECT_THROW((void)run_matrix(small_matrix("sample_collide", "statics")),
               std::invalid_argument);
}

TEST(Matrix, ReportIsDeterministicPerSeed) {
  const FigureReport a = run_matrix(small_matrix("flat_polling", "shrinking"));
  const FigureReport b = run_matrix(small_matrix("flat_polling", "shrinking"));
  ASSERT_EQ(a.raw_rows.size(), b.raw_rows.size());
  for (std::size_t i = 0; i < a.raw_rows.size(); ++i) {
    for (std::size_t c = 0; c < a.raw_rows[i].size(); ++c) {
      EXPECT_DOUBLE_EQ(a.raw_rows[i][c], b.raw_rows[i][c]);
    }
  }
}

}  // namespace
}  // namespace p2pse::harness
