// Determinism contract of the replica fan-out: the same seed must produce a
// byte-identical FigureReport whether replicas run inline, on 2 threads, or
// on 8 threads. Also covers the runner primitive itself.
#include "p2pse/harness/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "p2pse/harness/figures.hpp"
#include "p2pse/harness/report.hpp"
#include "p2pse/obs/telemetry.hpp"

namespace p2pse::harness {
namespace {

TEST(ParallelReplicaRunner, MapPreservesIndexOrder) {
  const ParallelReplicaRunner pool(4);
  const auto out = pool.map<std::size_t>(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelReplicaRunner, ZeroJobsIsANoOp) {
  const ParallelReplicaRunner pool(4);
  std::atomic<int> calls{0};
  pool.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(pool.map<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(ParallelReplicaRunner, SingleThreadRunsEveryJobInline) {
  const ParallelReplicaRunner pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;  // safe: inline execution is sequential
  pool.run(10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelReplicaRunner, ZeroThreadsPicksHardwareConcurrency) {
  const ParallelReplicaRunner pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelReplicaRunner, PropagatesJobExceptions) {
  const ParallelReplicaRunner pool(2);
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
}

TEST(ParallelReplicaRunner, RunsAllJobsAcrossThreads) {
  const ParallelReplicaRunner pool(8);
  std::atomic<std::size_t> sum{0};
  pool.run(100, [&](std::size_t i) { sum += i + 1; });
  EXPECT_EQ(sum.load(), 5050u);
}

std::string render(const FigureReport& report) {
  std::ostringstream out;
  print_report(out, report);
  return out.str();
}

FigureParams report_params(std::size_t threads) {
  FigureParams p;
  p.nodes = 1200;
  p.seed = 42;
  p.estimations = 8;
  p.replicas = 8;
  p.sc_collisions = 20;
  p.agg_rounds = 20;
  p.last_k = 4;
  p.threads = threads;
  return p;
}

TEST(ParallelFigures, ScStaticReportIdenticalAt1And2And8Threads) {
  const std::string baseline = render(run_figure("fig01", report_params(1)));
  EXPECT_EQ(render(run_figure("fig01", report_params(2))), baseline);
  EXPECT_EQ(render(run_figure("fig01", report_params(8))), baseline);
}

TEST(ParallelFigures, HsStaticReportIdenticalAt1And2And8Threads) {
  const std::string baseline = render(run_figure("fig03", report_params(1)));
  EXPECT_EQ(render(run_figure("fig03", report_params(2))), baseline);
  EXPECT_EQ(render(run_figure("fig03", report_params(8))), baseline);
}

TEST(ParallelFigures, AggStaticReportIdenticalAt1And2And8Threads) {
  FigureParams p = report_params(1);
  p.estimations = 30;  // rounds
  p.replicas = 3;
  const std::string baseline = render(run_figure("fig05", p));
  p.threads = 2;
  EXPECT_EQ(render(run_figure("fig05", p)), baseline);
  p.threads = 8;
  EXPECT_EQ(render(run_figure("fig05", p)), baseline);
}

TEST(ParallelFigures, ScDynamicReportIdenticalAt1And2And8Threads) {
  FigureParams p = report_params(1);
  p.replicas = 4;
  const auto generate = [&] { return render(run_figure("fig11", p)); };
  const std::string baseline = generate();
  p.threads = 2;
  EXPECT_EQ(generate(), baseline);
  p.threads = 8;
  EXPECT_EQ(generate(), baseline);
}

TEST(ParallelFigures, MatrixReportIdenticalAcrossThreadCounts) {
  MatrixOptions options;
  options.estimator = "random_tour";
  options.scenario = "oscillating";
  options.params = report_params(1);
  options.params.estimations = 4;
  const auto generate = [&] {
    std::ostringstream out;
    print_report(out, run_matrix(options));
    return out.str();
  };
  const std::string baseline = generate();
  options.params.threads = 2;
  EXPECT_EQ(generate(), baseline);
  options.params.threads = 8;
  EXPECT_EQ(generate(), baseline);
}

TEST(ParallelFigures, LSweepReportIdenticalAcrossThreadCounts) {
  FigureParams p = report_params(1);
  p.estimations = 3;
  const std::string baseline = render(run_figure("ablation_sc_l_sweep", p));
  p.threads = 4;
  EXPECT_EQ(render(run_figure("ablation_sc_l_sweep", p)), baseline);
}

TEST(ParallelFigures, ProgressTelemetryUnderFanOutKeepsReportIdentical) {
  // Regression (data race): progress_enabled_ was a plain bool read outside
  // the telemetry mutex while eight replica threads called progress()
  // concurrently. It is atomic now; this test drives the racing path under
  // the TSan job and pins the byte-identity guarantee with the heartbeat on.
  MatrixOptions options;
  options.estimator = "sample_collide:l=10";
  options.scenario = "growing";
  options.params = report_params(1);
  options.params.estimations = 4;
  const auto generate = [&] {
    std::ostringstream out;
    print_report(out, run_matrix(options));
    return out.str();
  };
  const std::string baseline = generate();
  options.params.threads = 8;
  obs::RunTelemetry telemetry;
  telemetry.enable_progress();
  options.params.telemetry = &telemetry;
  EXPECT_EQ(generate(), baseline);
  EXPECT_EQ(telemetry.sim().replicas, 8u);
  EXPECT_TRUE(telemetry.progress_enabled());
}

TEST(ParallelFigures, StaticReplicaZeroMatchesSingleReplicaSeries) {
  // The plotted curves are replica #1; shrinking the replica count must not
  // change them, only the cross-replica aggregate notes.
  FigureParams p = report_params(1);
  const FigureReport many = run_figure("fig01", p);
  p.replicas = 1;
  const FigureReport one = run_figure("fig01", p);
  ASSERT_EQ(many.series.size(), 2u);
  ASSERT_EQ(one.series.size(), 2u);
  EXPECT_EQ(many.series[0].y, one.series[0].y);
  EXPECT_EQ(many.series[1].y, one.series[1].y);
}

}  // namespace
}  // namespace p2pse::harness
