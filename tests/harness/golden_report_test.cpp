// Byte-identity against the pre-refactor harness: these two golden reports
// were captured from the seed implementation (PR 1) of fig01/fig05 at
// reduced scale BEFORE the registry/spec-table refactor. The refactored
// generators must reproduce them bit-for-bit — same RNG stream consumption,
// same formatting — at the same seed/threads.
#include <gtest/gtest.h>

#include <sstream>

#include "p2pse/harness/figures.hpp"

namespace p2pse::harness {
namespace {

std::string render(const FigureReport& report) {
  std::ostringstream out;
  print_report(out, report);
  return out.str();
}

// ./fig01_sc_static_100k --nodes 1200 --estimations 6 --replicas 2 --seed 7
//                        --threads 2 --last-k 3
const char kGoldenFig01[] = R"GOLD(
== fig_sc_static: Sample&Collide: oneShot and last3runs quality, static overlay ==
   nodes=1200 l=200 T=10 estimations=6 replicas=2 seed=7

Quality of Sample&Collide estimations
140 |                                                                        
    |              *             *                                           
    |+             +             +              +             +             +
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
    |                                                                        
  0 |                                                                        
    +------------------------------------------------------------------------
     1                                                                      6
     x: Number of estimations   y: Quality %
     legend:  '*' one shot  '+' last 3 runs

  - mean |error| oneShot: 23.1% (paper: mostly within 10%, peaks to 20%)
  - mean |error| lastK:   23.5% (paper: within 3-4%)
  - mean messages per estimation: 56.9k
  - stats over 2 independent overlay replicas; plotted curves are replica #1

# csv: series,x,y
# csv: one shot,1,122.241
# csv: one shot,2,128.708
# csv: one shot,3,131.01
# csv: one shot,4,120.017
# csv: one shot,5,123.842
# csv: one shot,6,125.453
# csv: last 3 runs,1,122.241
# csv: last 3 runs,2,125.474
# csv: last 3 runs,3,127.32
# csv: last 3 runs,4,126.578
# csv: last 3 runs,5,124.956
# csv: last 3 runs,6,123.104
)GOLD";

// ./fig05_agg_static_100k --nodes 800 --estimations 30 --replicas 2 --seed 7
//                         --threads 2
const char kGoldenFig05[] = R"GOLD(
== fig_agg_static: Aggregation: estimation quality vs gossip round ==
   nodes=800 rounds=30 runs=2 seed=7

Convergence of Aggregation
110 |                                                                        
    |                                                                        
    |                                     1 1  1 1  2 2 2  2 2  2 2  2 2  2 2
    |                             1  1 1    2    2                           
    |                                          2                             
    |                           1      2                                     
    |                                2    2                                  
    |                    1 1 1                                               
    |                                                                        
    |                                                                        
    |                                                                        
    |            1    1           2                                          
    |               1      2 2  2                                            
    |                                                                        
    |          1                                                             
    |                 2  2                                                   
    |       2    2  2                                                        
  0 |2 2  2    2                                                             
    +------------------------------------------------------------------------
     1                                                                     30
     x: #Round   y: Quality %
     legend:  '1' Estimation #1  '2' Estimation #2

  - run #1 reaches 99% quality at round 19
  - run #2 reaches 99% quality at round 26
  - paper: converges around round 40 at 1e5 nodes, around 50 at 1e6

# csv: series,x,y
# csv: Estimation #1,1,0.4
# csv: Estimation #1,2,1.77778
# csv: Estimation #1,3,2.5098
# csv: Estimation #1,4,7.18596
# csv: Estimation #1,5,17.3376
# csv: Estimation #1,6,37.1539
# csv: Estimation #1,7,30.6117
# csv: Estimation #1,8,41.7856
# csv: Estimation #1,9,62.842
# csv: Estimation #1,10,67.1028
# csv: Estimation #1,11,67.8467
# csv: Estimation #1,12,78.3105
# csv: Estimation #1,13,91.0484
# csv: Estimation #1,14,88.2226
# csv: Estimation #1,15,91.5549
# csv: Estimation #1,16,95.3335
# csv: Estimation #1,17,97.4047
# csv: Estimation #1,18,98.9996
# csv: Estimation #1,19,99.0784
# csv: Estimation #1,20,98.6671
# csv: Estimation #1,21,99.1384
# csv: Estimation #1,22,99.4058
# csv: Estimation #1,23,99.7607
# csv: Estimation #1,24,99.862
# csv: Estimation #1,25,99.8255
# csv: Estimation #1,26,99.8977
# csv: Estimation #1,27,99.9327
# csv: Estimation #1,28,99.9707
# csv: Estimation #1,29,99.9599
# csv: Estimation #1,30,100.069
# csv: Estimation #2,1,0.5
# csv: Estimation #2,2,2
# csv: Estimation #2,3,2.28571
# csv: Estimation #2,4,4.57143
# csv: Estimation #2,5,3.1411
# csv: Estimation #2,6,6.66016
# csv: Estimation #2,7,5.76901
# csv: Estimation #2,8,10.8882
# csv: Estimation #2,9,11.5509
# csv: Estimation #2,10,31.8534
# csv: Estimation #2,11,34.2425
# csv: Estimation #2,12,34.1097
# csv: Estimation #2,13,38.315
# csv: Estimation #2,14,68.8423
# csv: Estimation #2,15,74.7232
# csv: Estimation #2,16,73.0238
# csv: Estimation #2,17,90.774
# csv: Estimation #2,18,83.2529
# csv: Estimation #2,19,90.2201
# csv: Estimation #2,20,95.2239
# csv: Estimation #2,21,94.3541
# csv: Estimation #2,22,96.6222
# csv: Estimation #2,23,97.3282
# csv: Estimation #2,24,97.5248
# csv: Estimation #2,25,98.1044
# csv: Estimation #2,26,99.511
# csv: Estimation #2,27,99.4132
# csv: Estimation #2,28,99.4132
# csv: Estimation #2,29,99.8391
# csv: Estimation #2,30,99.8804
)GOLD";

// Strips the leading newline the raw-string literals carry for readability.
std::string golden(const char* text) { return std::string(text).substr(1); }

TEST(GoldenReports, Fig01MatchesPreRefactorOutputByteForByte) {
  FigureParams p = find_figure("fig01")->defaults;
  p.nodes = 1200;
  p.estimations = 6;
  p.replicas = 2;
  p.seed = 7;
  p.last_k = 3;
  p.threads = 2;
  EXPECT_EQ(render(run_figure("fig01", p)), golden(kGoldenFig01));
}

TEST(GoldenReports, Fig05MatchesPreRefactorOutputByteForByte) {
  FigureParams p = find_figure("fig05")->defaults;
  p.nodes = 800;
  p.estimations = 30;
  p.replicas = 2;
  p.seed = 7;
  p.threads = 2;
  EXPECT_EQ(render(run_figure("fig05", p)), golden(kGoldenFig05));
}

}  // namespace
}  // namespace p2pse::harness
