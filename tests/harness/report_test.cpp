#include "p2pse/harness/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace p2pse::harness {
namespace {

FigureReport plot_report() {
  FigureReport r;
  r.id = "figX";
  r.title = "A Title";
  r.params = "nodes=10";
  r.notes = {"note one", "note two"};
  r.series.push_back(support::Series{"line", {1, 2, 3}, {4, 5, 6}, '*'});
  r.plot.x_label = "x";
  r.plot.y_label = "y";
  return r;
}

FigureReport table_report() {
  FigureReport r;
  r.id = "table1";
  r.title = "Overheads";
  r.table_columns = {"algo", "cost"};
  r.table_rows = {{"A", "10"}, {"B", "20"}};
  return r;
}

TEST(Report, PrintsHeaderTitleAndParams) {
  std::ostringstream out;
  print_report(out, plot_report());
  const std::string s = out.str();
  EXPECT_NE(s.find("== figX: A Title =="), std::string::npos);
  EXPECT_NE(s.find("nodes=10"), std::string::npos);
}

TEST(Report, PrintsNotes) {
  std::ostringstream out;
  print_report(out, plot_report());
  EXPECT_NE(out.str().find("- note one"), std::string::npos);
  EXPECT_NE(out.str().find("- note two"), std::string::npos);
}

TEST(Report, PlotModeEmitsCanvasAndCsv) {
  std::ostringstream out;
  print_report(out, plot_report());
  const std::string s = out.str();
  EXPECT_NE(s.find("legend:"), std::string::npos);
  EXPECT_NE(s.find("# csv: series,x,y"), std::string::npos);
  EXPECT_NE(s.find("# csv: line,1,4"), std::string::npos);
  EXPECT_NE(s.find("# csv: line,3,6"), std::string::npos);
}

TEST(Report, TableModeRendersAlignedColumns) {
  std::ostringstream out;
  print_report(out, table_report());
  const std::string s = out.str();
  EXPECT_NE(s.find("algo"), std::string::npos);
  EXPECT_NE(s.find("cost"), std::string::npos);
  EXPECT_NE(s.find("# csv: algo,cost"), std::string::npos);
  EXPECT_NE(s.find("# csv: A,10"), std::string::npos);
}

TEST(Report, CsvOnlyHelper) {
  std::ostringstream out;
  print_csv(out, table_report());
  EXPECT_EQ(out.str(), "# csv: algo,cost\n# csv: A,10\n# csv: B,20\n");
}

TEST(Report, CsvTruncatesToShortestAxis) {
  FigureReport r;
  r.series.push_back(support::Series{"s", {1, 2, 3}, {7}, '*'});
  std::ostringstream out;
  print_csv(out, r);
  EXPECT_EQ(out.str(), "# csv: series,x,y\n# csv: s,1,7\n");
}

TEST(Report, EmptyReportStillPrintsHeader) {
  FigureReport r;
  r.id = "empty";
  r.title = "Nothing";
  std::ostringstream out;
  print_report(out, r);
  EXPECT_NE(out.str().find("== empty: Nothing =="), std::string::npos);
}

}  // namespace
}  // namespace p2pse::harness
