// Nested-parallelism determinism matrix: the report must be byte-identical
// at every (--threads x --sim-threads) combination. Replica fan-out and
// intra-replica sharding compose through support::sim_worker_budget; both
// levels split fixed substreams and merge in index order, so neither knob
// may leak into the bytes. Node counts sit above the parallel-attach
// threshold so the sharded topology embedding genuinely runs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "p2pse/harness/figures.hpp"
#include "p2pse/harness/report.hpp"

namespace p2pse::harness {
namespace {

std::string render(const FigureReport& report) {
  std::ostringstream out;
  print_report(out, report);
  return out.str();
}

FigureParams matrix_params() {
  FigureParams p;
  p.nodes = 5000;  // above topo::attach's 4096 parallel threshold
  p.seed = 42;
  p.estimations = 4;
  p.replicas = 2;
  p.sc_collisions = 20;
  p.agg_rounds = 15;
  p.last_k = 3;
  // A non-flat topology makes the embedding (the sharded stage) do real
  // per-node work and real per-node RNG draws.
  p.topo = "topo:clustered,regions=3,mix=0:0.5:0.5";
  return p;
}

constexpr std::size_t kThreadAxis[] = {1, 2, 8};

TEST(ParallelSimThreads, Fig01ByteIdenticalAcrossThreadMatrix) {
  FigureParams p = matrix_params();
  p.threads = 1;
  p.sim_threads = 1;
  const std::string baseline = render(run_figure("fig01", p));
  for (const std::size_t threads : kThreadAxis) {
    for (const std::size_t sim_threads : kThreadAxis) {
      p.threads = threads;
      p.sim_threads = sim_threads;
      EXPECT_EQ(render(run_figure("fig01", p)), baseline)
          << "threads=" << threads << " sim-threads=" << sim_threads;
    }
  }
}

TEST(ParallelSimThreads, Fig05ByteIdenticalAcrossThreadMatrix) {
  FigureParams p = matrix_params();
  p.estimations = 20;  // gossip rounds for the epoch-mode figure
  p.threads = 1;
  p.sim_threads = 1;
  const std::string baseline = render(run_figure("fig05", p));
  for (const std::size_t threads : kThreadAxis) {
    for (const std::size_t sim_threads : kThreadAxis) {
      p.threads = threads;
      p.sim_threads = sim_threads;
      EXPECT_EQ(render(run_figure("fig05", p)), baseline)
          << "threads=" << threads << " sim-threads=" << sim_threads;
    }
  }
}

TEST(ParallelSimThreads, TraceReplayByteIdenticalAcrossThreadMatrix) {
  MatrixOptions options;
  options.estimator = "sample_collide:l=10";
  options.scenario = "trace:weibull,shape=0.5";
  options.params = matrix_params();
  options.params.estimations = 3;
  const auto generate = [&] { return render(run_matrix(options)); };
  options.params.threads = 1;
  options.params.sim_threads = 1;
  const std::string baseline = generate();
  for (const std::size_t threads : kThreadAxis) {
    for (const std::size_t sim_threads : kThreadAxis) {
      options.params.threads = threads;
      options.params.sim_threads = sim_threads;
      EXPECT_EQ(generate(), baseline)
          << "threads=" << threads << " sim-threads=" << sim_threads;
    }
  }
}

TEST(ParallelSimThreads, ShardedBuildMatrixByteIdenticalAcrossSimThreads) {
  MatrixOptions options;
  options.estimator = "sample_collide:l=10";
  options.scenario = "static";
  options.sharded_build = true;
  options.params = matrix_params();
  options.params.estimations = 3;
  const auto generate = [&] { return render(run_matrix(options)); };
  options.params.threads = 1;
  options.params.sim_threads = 1;
  const std::string baseline = generate();
  // The opt-in builder is recorded on the params line.
  EXPECT_NE(baseline.find("build=sharded"), std::string::npos);
  for (const std::size_t sim_threads : kThreadAxis) {
    options.params.threads = 2;
    options.params.sim_threads = sim_threads;
    EXPECT_EQ(generate(), baseline) << "sim-threads=" << sim_threads;
  }
}

TEST(ParallelSimThreads, AutoSimThreadsMatchesSequentialBytes) {
  // --sim-threads 0 (auto) resolves to whatever budget the hardware allows;
  // the bytes must not care.
  FigureParams p = matrix_params();
  p.threads = 2;
  p.sim_threads = 1;
  const std::string baseline = render(run_figure("fig01", p));
  p.sim_threads = 0;
  EXPECT_EQ(render(run_figure("fig01", p)), baseline);
}

}  // namespace
}  // namespace p2pse::harness
