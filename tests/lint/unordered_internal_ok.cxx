// Fixture: the unordered-iter rule only applies to report-writing files.
// This file writes nothing (no stream includes, no csv/report headers), so
// iterating an unordered set for an internal aggregate is acceptable.
#include <cstdint>
#include <unordered_set>

namespace fixture {

std::uint64_t internal_sum(const std::unordered_set<std::uint64_t>& seen) {
  std::uint64_t sum = 0;
  for (const std::uint64_t id : seen) sum += id;  // order-insensitive fold
  return sum;
}

}  // namespace fixture
