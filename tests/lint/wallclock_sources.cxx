// lint-fixture: treat-as src/p2pse/sim/scheduler.cpp
// Fixture: monotonic wall-clock reads in sim/estimator code must be flagged
// even though steady_clock is deterministically ordered — any host-time
// influence on the run would break the byte-identical-at-any---threads
// report contract. (system_clock is covered separately by `entropy`.)
// Never compiled — consumed by `determinism_lint.py --selftest`.
#include <chrono>

namespace fixture {

double bad_host_timing() {
  const auto start = std::chrono::steady_clock::now();    // expect-lint: wallclock
  const auto fine = std::chrono::high_resolution_clock::now();  // expect-lint: wallclock
  using clock = std::chrono::steady_clock;                // expect-lint: wallclock
  return std::chrono::duration<double>(fine - start).count() +
         std::chrono::duration<double>(clock::now() - start).count();
}

// Names that merely CONTAIN the tokens are fine.
struct SteadyClockModel {
  double steady_clock_rate = 1.0;  // identifier, not the chrono type
  double tick() const { return steady_clock_rate; }
};

double good_simulated_time(const SteadyClockModel& model) {
  return model.tick();
}

}  // namespace fixture
