// lint-fixture: treat-as src/p2pse/obs/trace_log.cpp
// Fixture: the obs/ telemetry layer is the one place in src/ where monotonic
// wall-clock reads are the point (span timing, progress heartbeats) — the
// allowlist must silence wallclock there (but NOT the entropy rule:
// system_clock stays banned even in obs/).
// Never compiled — consumed by `determinism_lint.py --selftest`.
#include <chrono>

namespace fixture {

long long span_timestamp_us() {
  const auto now = std::chrono::steady_clock::now();  // allowlisted path
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

long long still_banned_calendar_time() {
  const auto wall = std::chrono::system_clock::now();  // expect-lint: entropy
  return wall.time_since_epoch().count();
}

}  // namespace fixture
