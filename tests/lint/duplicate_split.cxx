// Fixture: duplicate index-less .split("tag") calls inside one function
// scope derive the SAME substream — the silent-correlation bug class. The
// same tag in two different functions, or split calls carrying an index
// argument, are fine.
#include <cstdint>

#include "p2pse/support/rng.hpp"

namespace fixture {

using p2pse::support::RngStream;

double correlated_replicas(const RngStream& root) {
  RngStream graph = root.split("graph");
  RngStream estimator = root.split("estimator");
  RngStream oops = root.split("graph");  // expect-lint: dup-split
  return graph.uniform_real() + estimator.uniform_real() + oops.uniform_real();
}

double independent_scopes(const RngStream& root) {
  // Same tag as above, but a fresh function scope: no finding.
  RngStream graph = root.split("graph");
  double sum = 0.0;
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    // Indexed splits are the sanctioned way to fan one tag out:
    sum += root.split("replica", rep).uniform_real();
  }
  return sum + graph.uniform_real();
}

}  // namespace fixture
