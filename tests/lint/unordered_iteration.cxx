// Fixture: range-for over unordered containers in a report-writing file
// (this one: it includes <ostream> and writes CSV-ish rows). Bucket order
// is implementation-defined, so emitted rows would not be byte-stable.
#include <cstdint>
#include <map>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Report {
  std::unordered_map<std::uint64_t, double> estimates;
  std::unordered_set<std::uint64_t> flagged_;
  std::map<std::uint64_t, double> ordered;
  std::vector<double> rows;
};

void write_report(std::ostream& out, const Report& report) {
  for (const auto& [node, value] : report.estimates) {  // expect-lint: unordered-iter
    out << node << ',' << value << '\n';
  }
  for (const std::uint64_t node : report.flagged_) {  // expect-lint: unordered-iter
    out << node << '\n';
  }
  // Ordered containers and vectors keep deterministic iteration order:
  for (const auto& [node, value] : report.ordered) out << node << value;
  for (const double row : report.rows) out << row;
}

void write_members(std::ostream& out) {
  std::unordered_map<std::uint64_t, double> estimates;
  std::unordered_set<std::uint64_t> flagged_;
  for (const auto& entry : estimates) out << entry.first;  // expect-lint: unordered-iter
  for (const auto id : flagged_) out << id;                // expect-lint: unordered-iter
  // Lookup/erase on unordered containers is fine — only iteration order
  // can leak into the report:
  estimates.erase(0);
}

}  // namespace fixture
