// Fixture: representative clean code — the idioms the project actually
// uses. A selftest run over this file must produce zero findings.
#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "p2pse/support/rng.hpp"

namespace fixture {

using p2pse::support::RngStream;

struct Replica {
  RngStream graph_rng;
  RngStream estimator_rng;
  RngStream channel_rng;
};

Replica make_replica(const RngStream& root, std::uint64_t rep) {
  return Replica{
      root.split("graph", rep),
      root.split("estimator", rep),
      root.split("channel", rep),
  };
}

void write_sorted(std::ostream& out,
                  const std::unordered_map<std::uint64_t, double>& values) {
  // Unordered lookup structure, but the OUTPUT path iterates a sorted copy:
  std::vector<std::pair<std::uint64_t, double>> rows(values.begin(),
                                                     values.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& [node, value] : rows) {
    out << node << ',' << value << '\n';
  }
}

}  // namespace fixture
