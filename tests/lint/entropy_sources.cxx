// Fixture: every banned entropy/wall-clock source must be flagged.
// Never compiled — consumed by `determinism_lint.py --selftest`.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned bad_seed_sources() {
  std::random_device entropy;                          // expect-lint: entropy
  std::srand(42);                                      // expect-lint: entropy
  unsigned mix = entropy() + static_cast<unsigned>(rand());  // expect-lint: entropy
  mix += static_cast<unsigned>(time(nullptr));         // expect-lint: entropy
  mix += static_cast<unsigned>(clock());               // expect-lint: entropy
  const auto wall = std::chrono::system_clock::now();  // expect-lint: entropy
  mix += static_cast<unsigned>(wall.time_since_epoch().count());
  return mix;
}

// Member calls and names that merely CONTAIN the banned tokens are fine.
struct Timer {
  double time() const { return 0.0; }
  double next_time() const { return time(); }
  double randomize() const { return 0.0; }  // 'rand' substring: not a call
};

double good_simulated_time(const Timer& t) {
  return t.time() + t.next_time() + t.randomize();
}

}  // namespace fixture
