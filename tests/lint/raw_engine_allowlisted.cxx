// lint-fixture: treat-as src/p2pse/support/rng.hpp
// Fixture: the support/rng implementation files are the one place raw
// engine machinery is allowed — the allowlist must silence raw-engine (but
// NOT the entropy rule: even the RNG layer must never read wall-clock).
#include <random>

namespace fixture {

std::uint64_t reference_engine_for_tests() {
  std::mt19937_64 reference(0x9e3779b97f4a7c15ULL);  // allowlisted path
  return reference();
}

std::uint64_t still_banned_entropy() {
  std::random_device entropy;  // expect-lint: entropy
  return entropy();
}

}  // namespace fixture
