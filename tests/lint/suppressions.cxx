// Fixture: the suppression grammar. A reasoned allow() shields exactly its
// rule on exactly its line (or the next code line for comment-only
// suppressions); unknown rules, missing reasons, and suppressions that no
// longer match a finding are themselves findings.
#include <chrono>

namespace fixture {

double sanctioned_wall_clock() {
  // Display-only timing, sanctioned with a reason — no finding here:
  const auto t0 = std::chrono::system_clock::now();  // p2pse-lint: allow(entropy) wall-clock is display-only, never seeds a stream
  return static_cast<double>(t0.time_since_epoch().count());
}

double comment_line_suppression() {
  // p2pse-lint: allow(entropy) banner timestamp only, results carry no time
  const auto t0 = std::chrono::system_clock::now();
  return static_cast<double>(t0.time_since_epoch().count());
}

// expect-lint(+1): bad-suppression
// p2pse-lint: allow(no-such-rule) rule name is not in the table

// expect-lint(+1): bad-suppression
// p2pse-lint: allow(entropy)

int stale() {
  // expect-lint(+1): stale-suppression
  return 2;  // p2pse-lint: allow(entropy) nothing on this line draws entropy
}

}  // namespace fixture
