// Fixture: raw stdlib engines/distributions outside support/rng are flagged;
// mentions inside comments or string literals are not.
#include <algorithm>
#include <random>
#include <vector>

namespace fixture {

double bad_engines(std::vector<int>& values) {
  std::mt19937 gen(42);                       // expect-lint: raw-engine
  std::mt19937_64 gen64(42);                  // expect-lint: raw-engine
  std::default_random_engine basic(7);        // expect-lint: raw-engine
  std::uniform_int_distribution<int> die(1, 6);   // expect-lint: raw-engine
  std::normal_distribution<double> bell(0, 1);    // expect-lint: raw-engine
  std::shuffle(values.begin(), values.end(), gen);  // expect-lint: raw-engine
  return die(gen) + bell(gen64) + static_cast<double>(basic());
}

// Prose mentioning std::mt19937 in a comment is not a finding, and neither
// is the token inside a diagnostic string:
const char* kHelp = "do not use std::mt19937 here";

}  // namespace fixture
