#include "p2pse/est/aggregation_suite.hpp"

#include <gtest/gtest.h>

#include "p2pse/est/aggregation.hpp"
#include "p2pse/net/builders.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

TEST(MultiAggregation, ValidatesConfig) {
  EXPECT_THROW(MultiAggregation({.rounds_per_epoch = 0, .instances = 4}),
               std::invalid_argument);
  EXPECT_THROW(MultiAggregation({.rounds_per_epoch = 10, .instances = 0}),
               std::invalid_argument);
}

TEST(MultiAggregation, StartEpochRequiresNodes) {
  sim::Simulator sim(net::Graph(0), 1);
  support::RngStream rng(2);
  MultiAggregation agg({.rounds_per_epoch = 10, .instances = 4});
  EXPECT_THROW(agg.start_epoch(sim, rng), std::invalid_argument);
}

TEST(MultiAggregation, ConvergesToTheCount) {
  sim::Simulator sim = hetero_sim(3000, 3);
  support::RngStream rng(4);
  MultiAggregation agg({.rounds_per_epoch = 50, .instances = 8});
  const Estimate e = agg.run_epoch(sim, rng);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(support::quality_percent(e.value, 3000.0), 100.0, 3.0);
}

TEST(MultiAggregation, PiggybackedInstancesCostNoExtraMessages) {
  sim::Simulator sim_multi = hetero_sim(2000, 5);
  sim::Simulator sim_single = hetero_sim(2000, 5);
  support::RngStream rng_a(6), rng_b(6);
  MultiAggregation multi({.rounds_per_epoch = 30, .instances = 16});
  Aggregation single({.rounds_per_epoch = 30});
  const Estimate em = multi.run_epoch(sim_multi, rng_a);
  const Estimate es = single.run_epoch(sim_single, 0, rng_b);
  EXPECT_EQ(em.messages, es.messages);  // same exchange count
}

TEST(MultiAggregation, MedianBeatsSingleInstanceAtFewRounds) {
  // At truncated epochs (before full convergence) single-instance estimates
  // scatter wildly; the median over instances is much tighter. This is the
  // variance-reduction claim of [9].
  constexpr std::uint32_t kShortEpoch = 15;
  support::RunningStats single_err, multi_err;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Simulator sim = hetero_sim(2000, 100 + seed);
    support::RngStream rng(200 + seed);
    Aggregation single({.rounds_per_epoch = kShortEpoch});
    const Estimate es = single.run_epoch(sim, 0, rng);
    if (es.valid) {
      single_err.add(
          std::abs(support::quality_percent(es.value, 2000.0) - 100.0));
    } else {
      single_err.add(100.0);
    }
    MultiAggregation multi(
        {.rounds_per_epoch = kShortEpoch, .instances = 16});
    const Estimate em = multi.run_epoch(sim, rng);
    if (em.valid) {
      multi_err.add(
          std::abs(support::quality_percent(em.value, 2000.0) - 100.0));
    } else {
      multi_err.add(100.0);
    }
  }
  EXPECT_LT(multi_err.mean(), single_err.mean());
}

TEST(MultiAggregation, MeanCombinerWorksToo) {
  sim::Simulator sim = hetero_sim(2000, 7);
  support::RngStream rng(8);
  MultiAggregation agg({.rounds_per_epoch = 50,
                        .instances = 8,
                        .combine = MultiAggregationConfig::Combine::kMean});
  const Estimate e = agg.run_epoch(sim, rng);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(support::quality_percent(e.value, 2000.0), 100.0, 5.0);
}

TEST(MultiAggregation, InstanceEstimatesExposed) {
  sim::Simulator sim = hetero_sim(1000, 9);
  support::RngStream rng(10);
  MultiAggregation agg({.rounds_per_epoch = 60, .instances = 5});
  agg.start_epoch(sim, rng);
  for (int r = 0; r < 60; ++r) agg.run_round(sim, rng);
  const auto values = agg.instance_estimates(0);
  EXPECT_EQ(values.size(), 5u);
  for (const double v : values) EXPECT_NEAR(v, 1000.0, 120.0);
}

TEST(MultiAggregation, EstimateAtDeadNodeInvalid) {
  sim::Simulator sim = hetero_sim(100, 11);
  support::RngStream rng(12);
  MultiAggregation agg({.rounds_per_epoch = 10, .instances = 2});
  agg.start_epoch(sim, rng);
  sim.graph().remove_node(17);
  EXPECT_FALSE(agg.estimate_at(sim, 17).valid);
}

}  // namespace
}  // namespace p2pse::est
