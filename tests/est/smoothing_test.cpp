#include "p2pse/est/smoothing.hpp"

#include <gtest/gtest.h>

namespace p2pse::est {
namespace {

TEST(LastKAverage, RejectsZeroWindow) {
  EXPECT_THROW(LastKAverage(0), std::invalid_argument);
}

TEST(LastKAverage, PartialWindowAveragesWhatItHas) {
  LastKAverage avg(10);
  EXPECT_DOUBLE_EQ(avg.add(10.0), 10.0);
  EXPECT_DOUBLE_EQ(avg.add(20.0), 15.0);
  EXPECT_DOUBLE_EQ(avg.add(30.0), 20.0);
  EXPECT_FALSE(avg.full());
  EXPECT_EQ(avg.count(), 3u);
}

TEST(LastKAverage, SlidesWindow) {
  LastKAverage avg(3);
  avg.add(1.0);
  avg.add(2.0);
  avg.add(3.0);
  EXPECT_TRUE(avg.full());
  EXPECT_DOUBLE_EQ(avg.mean(), 2.0);
  avg.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(avg.mean(), 5.0);
  avg.add(10.0);  // evicts 2.0
  EXPECT_DOUBLE_EQ(avg.mean(), (3.0 + 10.0 + 10.0) / 3.0);
}

TEST(LastKAverage, WindowOfOneIsIdentity) {
  LastKAverage avg(1);
  EXPECT_DOUBLE_EQ(avg.add(5.0), 5.0);
  EXPECT_DOUBLE_EQ(avg.add(9.0), 9.0);
  EXPECT_TRUE(avg.full());
}

TEST(LastKAverage, EmptyMeanIsZero) {
  const LastKAverage avg(4);
  EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
  EXPECT_EQ(avg.count(), 0u);
}

TEST(LastKAverage, ResetClears) {
  LastKAverage avg(3);
  avg.add(7.0);
  avg.add(8.0);
  avg.reset();
  EXPECT_EQ(avg.count(), 0u);
  EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
  EXPECT_DOUBLE_EQ(avg.add(2.0), 2.0);
}

TEST(LastKAverage, LongStreamStaysNumericallySane) {
  LastKAverage avg(10);
  for (int i = 0; i < 100000; ++i) avg.add(100000.0);
  EXPECT_NEAR(avg.mean(), 100000.0, 1e-6);
}

TEST(LastKAverage, WindowReportsConfiguredSize) {
  const LastKAverage avg(7);
  EXPECT_EQ(avg.window(), 7u);
}

}  // namespace
}  // namespace p2pse::est
