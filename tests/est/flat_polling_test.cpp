#include "p2pse/est/flat_polling.hpp"

#include <gtest/gtest.h>

#include "p2pse/est/hops_sampling.hpp"
#include "p2pse/net/builders.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

TEST(FlatPolling, ValidatesConfig) {
  EXPECT_THROW(FlatPolling({.reply_probability = 0.0}), std::invalid_argument);
  EXPECT_THROW(FlatPolling({.reply_probability = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(FlatPolling({.reply_probability = 1.5}), std::invalid_argument);
  EXPECT_NO_THROW(FlatPolling({.reply_probability = 1.0}));
}

TEST(FlatPolling, FloodReachesTheWholeComponent) {
  sim::Simulator sim = hetero_sim(5000, 1);
  support::RngStream rng(2);
  const FlatPolling poll({.reply_probability = 0.1});
  const FlatPollingResult r = poll.run_once(sim, 0, rng);
  EXPECT_GE(static_cast<double>(r.reached),
            0.999 * static_cast<double>(sim.graph().size()));
}

TEST(FlatPolling, ProbabilityOneCountsExactly) {
  sim::Simulator sim = hetero_sim(1000, 3);
  support::RngStream rng(4);
  const FlatPolling poll({.reply_probability = 1.0});
  const FlatPollingResult r = poll.run_once(sim, 0, rng);
  ASSERT_TRUE(r.estimate.valid);
  // Every reached node replies once: the estimate equals the reach exactly.
  EXPECT_DOUBLE_EQ(r.estimate.value, static_cast<double>(r.reached));
}

TEST(FlatPolling, UnbiasedAtModerateProbability) {
  sim::Simulator sim = hetero_sim(10000, 5);
  support::RngStream rng(6);
  const FlatPolling poll({.reply_probability = 0.05});
  support::RunningStats quality;
  for (int i = 0; i < 25; ++i) {
    const FlatPollingResult r = poll.run_once(sim, 0, rng);
    quality.add(support::quality_percent(r.estimate.value, 10000.0));
  }
  EXPECT_NEAR(quality.mean(), 100.0, 6.0);
}

TEST(FlatPolling, FloodCostIsTwoEdges) {
  sim::Simulator sim = hetero_sim(5000, 7);
  support::RngStream rng(8);
  const FlatPolling poll({.reply_probability = 0.01});
  const FlatPollingResult r = poll.run_once(sim, 0, rng);
  // Every informed node transmits deg copies: ~2|E| spread messages.
  const double expected = 2.0 * static_cast<double>(sim.graph().edge_count());
  EXPECT_NEAR(static_cast<double>(r.estimate.messages), expected,
              0.05 * expected);
}

TEST(FlatPolling, ReplyVolumeScalesWithProbability) {
  sim::Simulator sim = hetero_sim(20000, 9);
  support::RngStream rng(10);
  const FlatPolling low({.reply_probability = 0.01});
  const FlatPolling high({.reply_probability = 0.5});
  const auto r_low = low.run_once(sim, 0, rng);
  const auto r_high = high.run_once(sim, 0, rng);
  EXPECT_NEAR(static_cast<double>(r_low.replies), 0.01 * 20000.0, 80.0);
  EXPECT_NEAR(static_cast<double>(r_high.replies), 0.5 * 20000.0, 600.0);
}

TEST(FlatPolling, LowerProbabilityMeansHigherVariance) {
  sim::Simulator sim = hetero_sim(10000, 11);
  support::RngStream rng(12);
  const auto stddev_at = [&](double p) {
    const FlatPolling poll({.reply_probability = p});
    support::RunningStats estimates;
    for (int i = 0; i < 30; ++i) {
      estimates.add(poll.run_once(sim, 0, rng).estimate.value);
    }
    return estimates.stddev();
  };
  EXPECT_GT(stddev_at(0.005), stddev_at(0.2));
}

TEST(FlatPolling, DeadInitiatorInvalid) {
  sim::Simulator sim = hetero_sim(100, 13);
  sim.graph().remove_node(5);
  support::RngStream rng(14);
  const FlatPolling poll({.reply_probability = 0.1});
  EXPECT_FALSE(poll.run_once(sim, 5, rng).estimate.valid);
}

TEST(FlatPolling, WhyThePaperGradesTheProbability) {
  // HopsSampling's distance-graded schedule exists to avoid the reply
  // implosion near the initiator: at equal-ish accuracy, flat polling with
  // p large enough to be accurate sends far more replies than HopsSampling.
  sim::Simulator sim = hetero_sim(20000, 15);
  support::RngStream rng(16);
  const FlatPolling flat({.reply_probability = 0.5});
  const HopsSampling hs({});
  const auto flat_result = flat.run_once(sim, 0, rng);
  const auto hs_result = hs.run_once(sim, 0, rng);
  EXPECT_GT(flat_result.replies, 5 * hs_result.replies);
}

}  // namespace
}  // namespace p2pse::est
