// Parameter-grid property sweeps over the two tunable candidates: the
// estimators must stay sane over the whole configuration space the paper
// discusses (S&C's T x l trade-off, HopsSampling's spread knobs).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "p2pse/est/hops_sampling.hpp"
#include "p2pse/est/sample_collide.hpp"
#include "p2pse/net/builders.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

// ---- Sample&Collide T x l grid ---------------------------------------------
using ScGrid = std::tuple<double, std::uint32_t>;

class SampleCollideGrid : public ::testing::TestWithParam<ScGrid> {};

TEST_P(SampleCollideGrid, EstimateSaneAndCostMonotoneInT) {
  const auto& [timer, l] = GetParam();
  sim::Simulator sim = hetero_sim(4000, 17);
  support::RngStream rng(18);
  const SampleCollide sc({.timer = timer, .collisions = l});
  support::RunningStats quality, msgs;
  for (int i = 0; i < 3; ++i) {
    const Estimate e = sc.estimate_once(sim, 0, rng);
    ASSERT_TRUE(e.valid);
    quality.add(support::quality_percent(e.value, 4000.0));
    msgs.add(static_cast<double>(e.messages));
  }
  // Even badly-tuned configurations stay within an order of magnitude; the
  // well-tuned ones (T >= 5) are tight.
  if (timer >= 5.0 && l >= 50) {
    EXPECT_NEAR(quality.mean(), 100.0, 30.0);
  } else {
    EXPECT_GT(quality.mean(), 15.0);
    EXPECT_LT(quality.mean(), 300.0);
  }
  // Cost ~ sqrt(2 l N) * (T * avg_deg + 1): sanity band.
  const double per_sample = timer * 7.2 + 1.0;
  const double expected = std::sqrt(2.0 * l * 4000.0) * per_sample;
  EXPECT_GT(msgs.mean(), 0.3 * expected);
  EXPECT_LT(msgs.mean(), 3.0 * expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SampleCollideGrid,
    ::testing::Combine(::testing::Values(1.0, 5.0, 10.0),
                       ::testing::Values(std::uint32_t{10}, std::uint32_t{50},
                                         std::uint32_t{200})),
    [](const ::testing::TestParamInfo<ScGrid>& info) {
      return "T" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_l" + std::to_string(std::get<1>(info.param));
    });

// ---- HopsSampling spread-knob grid -----------------------------------------
using HsGrid = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class HopsSamplingGrid : public ::testing::TestWithParam<HsGrid> {};

TEST_P(HopsSamplingGrid, CoverageGrowsWithSpreadAggressiveness) {
  const auto& [gossip_to, gossip_until, min_hops] = GetParam();
  sim::Simulator sim = hetero_sim(6000, 19);
  support::RngStream rng(20);
  HopsSamplingConfig config;
  config.gossip_to = gossip_to;
  config.gossip_until = gossip_until;
  config.min_hops_reporting = min_hops;
  const HopsSampling hs(config);
  support::RunningStats coverage, quality;
  for (int i = 0; i < 5; ++i) {
    const HopsSamplingResult r = hs.run_once(sim, 0, rng);
    ASSERT_TRUE(r.estimate.valid);
    coverage.add(static_cast<double>(r.reached) / 6000.0);
    quality.add(support::quality_percent(r.estimate.value, 6000.0));
  }
  // Fanout >= 3 with gossipUntil >= 2 floods essentially everyone.
  if (gossip_to >= 3 && gossip_until >= 2) {
    EXPECT_GT(coverage.mean(), 0.95);
  } else {
    EXPECT_GT(coverage.mean(), 0.55);
  }
  // Estimates never collapse or explode across the grid.
  EXPECT_GT(quality.mean(), 20.0);
  EXPECT_LT(quality.mean(), 220.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HopsSamplingGrid,
    ::testing::Combine(::testing::Values(std::uint32_t{2}, std::uint32_t{3}),
                       ::testing::Values(std::uint32_t{1}, std::uint32_t{2}),
                       ::testing::Values(std::uint32_t{3}, std::uint32_t{5},
                                         std::uint32_t{8})),
    [](const ::testing::TestParamInfo<HsGrid>& info) {
      return "to" + std::to_string(std::get<0>(info.param)) + "_until" +
             std::to_string(std::get<1>(info.param)) + "_mhr" +
             std::to_string(std::get<2>(info.param));
    });

// Coverage monotonicity in gossipTo, directly (not via the grid bands).
TEST(HopsSamplingMonotonicity, FanoutIncreasesCoverage) {
  sim::Simulator sim = hetero_sim(6000, 21);
  support::RngStream rng(22);
  double previous = 0.0;
  for (const std::uint32_t fanout : {1u, 2u, 4u}) {
    HopsSamplingConfig config;
    config.gossip_to = fanout;
    const HopsSampling hs(config);
    support::RunningStats coverage;
    for (int i = 0; i < 5; ++i) {
      coverage.add(
          static_cast<double>(hs.run_once(sim, 0, rng).reached) / 6000.0);
    }
    EXPECT_GT(coverage.mean(), previous);
    previous = coverage.mean();
  }
}

}  // namespace
}  // namespace p2pse::est
