// Latency models + the §V delay conjecture implemented in est/delay.*.
#include "p2pse/est/delay.hpp"

#include <gtest/gtest.h>

#include "p2pse/net/builders.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

using sim::LatencyModel;

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

TEST(LatencyModel, ConstantIsExact) {
  support::RngStream rng(1);
  const LatencyModel m = LatencyModel::constant(5.0);
  EXPECT_DOUBLE_EQ(m.sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.sequential(10, rng), 50.0);
}

TEST(LatencyModel, UniformStaysInRange) {
  support::RngStream rng(2);
  const LatencyModel m = LatencyModel::uniform(10.0, 20.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = m.sample(rng);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
  }
  EXPECT_DOUBLE_EQ(m.mean(), 15.0);
}

TEST(LatencyModel, ExponentialHasRequestedMean) {
  support::RngStream rng(3);
  const LatencyModel m = LatencyModel::exponential(40.0);
  support::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(m.sample(rng));
  EXPECT_NEAR(stats.mean(), 40.0, 1.5);
  EXPECT_DOUBLE_EQ(m.mean(), 40.0);
}

TEST(LatencyModel, SequentialSumsIndependentHops) {
  support::RngStream rng(4);
  const LatencyModel m = LatencyModel::uniform(1.0, 3.0);
  support::RunningStats stats;
  for (int i = 0; i < 2000; ++i) stats.add(m.sequential(100, rng));
  EXPECT_NEAR(stats.mean(), 200.0, 5.0);
}

TEST(LatencyModel, Validation) {
  EXPECT_THROW((void)LatencyModel::constant(-1.0), std::invalid_argument);
  EXPECT_THROW((void)LatencyModel::uniform(5.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)LatencyModel::uniform(-1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)LatencyModel::exponential(0.0), std::invalid_argument);
}

TEST(DelayAnalysis, SampleCollideDelayMatchesItsMessageCount) {
  // With constant hop latency 1, a fully sequential protocol's delay equals
  // its total message count (every message is on the critical path).
  sim::Simulator sim = hetero_sim(3000, 5);
  support::RngStream rng(6);
  const SampleCollide sc({.timer = 10.0, .collisions = 20});
  const DelayConfig config{.hop_latency = LatencyModel::constant(1.0)};
  const DelayBreakdown d = sample_collide_delay(sim, sc, 0, config, rng);
  EXPECT_DOUBLE_EQ(d.total, static_cast<double>(d.messages));
  EXPECT_GT(d.estimate, 0.0);
}

TEST(DelayAnalysis, HopsSamplingDelayIsSpreadDepth) {
  sim::Simulator sim = hetero_sim(3000, 7);
  support::RngStream rng(8);
  const HopsSampling hs({});
  const DelayConfig config{.hop_latency = LatencyModel::constant(1.0)};
  const DelayBreakdown d = hops_sampling_delay(sim, hs, 0, config, rng);
  // The spread dies within tens of rounds; delay must be FAR below the
  // message count (parallelism).
  EXPECT_LT(d.total, 100.0);
  EXPECT_GT(static_cast<double>(d.messages), 1000.0);
}

TEST(DelayAnalysis, AggregationDelayIsRoundsTimesPeriod) {
  sim::Simulator sim = hetero_sim(3000, 9);
  support::RngStream rng(10);
  Aggregation agg({.rounds_per_epoch = 50});
  const DelayConfig config{.hop_latency = LatencyModel::constant(1.0),
                           .aggregation_period_hops = 2.0};
  const DelayBreakdown d = aggregation_delay(sim, agg, 0, config, rng);
  EXPECT_DOUBLE_EQ(d.total, 100.0);  // 50 rounds * 2 hops * 1 unit
}

TEST(DelayAnalysis, PaperSectionVConjectureHolds) {
  // "HopsSampling probably outperforms the other algorithms in terms of
  // delay": under any sensible hop latency, HS's parallel spread finishes
  // orders of magnitude before S&C's sequential sampling, and before
  // Aggregation's 50 synchronized rounds at realistic periods.
  sim::Simulator sim = hetero_sim(10000, 11);
  support::RngStream rng(12);
  const DelayConfig config{.hop_latency = LatencyModel::constant(1.0),
                           .aggregation_period_hops = 2.0};
  const HopsSampling hs({});
  const DelayBreakdown hs_delay = hops_sampling_delay(sim, hs, 0, config, rng);
  const SampleCollide sc({.timer = 10.0, .collisions = 200});
  const DelayBreakdown sc_delay =
      sample_collide_delay(sim, sc, 0, config, rng);
  Aggregation agg({.rounds_per_epoch = 50});
  const DelayBreakdown agg_delay =
      aggregation_delay(sim, agg, 0, config, rng);

  EXPECT_LT(hs_delay.total, agg_delay.total);
  EXPECT_LT(hs_delay.total, sc_delay.total / 100.0);
  EXPECT_LT(agg_delay.total, sc_delay.total);  // 200 sequential samples lose
}

}  // namespace
}  // namespace p2pse::est
