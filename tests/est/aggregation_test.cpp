#include "p2pse/est/aggregation.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "p2pse/net/builders.hpp"
#include "p2pse/net/churn.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

TEST(AggregationConfig, Validation) {
  EXPECT_THROW(Aggregation({.rounds_per_epoch = 0}), std::invalid_argument);
}

TEST(Aggregation, StartEpochSetsIndicator) {
  sim::Simulator sim = hetero_sim(100, 1);
  Aggregation agg({.rounds_per_epoch = 10});
  agg.start_epoch(sim, 5);
  EXPECT_DOUBLE_EQ(agg.value_at(5), 1.0);
  EXPECT_DOUBLE_EQ(agg.value_at(0), 0.0);
  EXPECT_DOUBLE_EQ(agg.total_mass(sim), 1.0);
  EXPECT_EQ(agg.epoch(), 1u);
  EXPECT_EQ(agg.initiator(), 5u);
}

TEST(Aggregation, StartEpochRequiresAliveInitiator) {
  sim::Simulator sim = hetero_sim(50, 2);
  sim.graph().remove_node(3);
  Aggregation agg({.rounds_per_epoch = 10});
  EXPECT_THROW(agg.start_epoch(sim, 3), std::invalid_argument);
}

TEST(Aggregation, MassConservedUnderStaticMembership) {
  sim::Simulator sim = hetero_sim(2000, 3);
  support::RngStream rng(4);
  Aggregation agg({.rounds_per_epoch = 100});
  agg.start_epoch(sim, 0);
  for (int round = 0; round < 100; ++round) {
    agg.run_round(sim, rng);
    EXPECT_NEAR(agg.total_mass(sim), 1.0, 1e-9);
  }
}

TEST(Aggregation, ConvergesToExactCountOnStaticGraph) {
  sim::Simulator sim = hetero_sim(5000, 5);
  support::RngStream rng(6);
  Aggregation agg({.rounds_per_epoch = 60});
  const Estimate e = agg.run_epoch(sim, 0, rng);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(support::quality_percent(e.value, 5000.0), 100.0, 2.0);
}

TEST(Aggregation, DispersionShrinksMonotonically) {
  sim::Simulator sim = hetero_sim(2000, 7);
  support::RngStream rng(8);
  Aggregation agg({.rounds_per_epoch = 50});
  agg.start_epoch(sim, 0);
  double previous = agg.value_dispersion(sim);
  for (int round = 0; round < 30; ++round) {
    agg.run_round(sim, rng);
    const double current = agg.value_dispersion(sim);
    EXPECT_LT(current, previous * 1.05);  // allow tiny stochastic wiggle
    previous = current;
  }
  EXPECT_LT(previous, 0.1);
}

TEST(Aggregation, EveryNodeEventuallyKnowsTheSize) {
  // §V: "eventually the size estimation is available at each node".
  sim::Simulator sim = hetero_sim(1000, 9);
  support::RngStream rng(10);
  Aggregation agg({.rounds_per_epoch = 80});
  agg.start_epoch(sim, 0);
  for (int round = 0; round < 80; ++round) agg.run_round(sim, rng);
  for (const net::NodeId id : sim.graph().alive_nodes()) {
    const Estimate e = agg.estimate_at(sim, id);
    ASSERT_TRUE(e.valid);
    EXPECT_NEAR(support::quality_percent(e.value, 1000.0), 100.0, 10.0);
  }
}

TEST(Aggregation, MessageCostIsTwoPerNodePerRound) {
  sim::Simulator sim = hetero_sim(3000, 11);
  support::RngStream rng(12);
  Aggregation agg({.rounds_per_epoch = 10});
  const Estimate e = agg.run_epoch(sim, 0, rng);
  // Overhead = nodes * rounds * 2 (§IV-E), minus isolated nodes that skip.
  EXPECT_NEAR(static_cast<double>(e.messages), 3000.0 * 10.0 * 2.0,
              3000.0 * 10.0 * 0.02);
}

TEST(Aggregation, EpochRestartResetsStaleValues) {
  sim::Simulator sim = hetero_sim(500, 13);
  support::RngStream rng(14);
  Aggregation agg({.rounds_per_epoch = 40});
  (void)agg.run_epoch(sim, 0, rng);
  agg.start_epoch(sim, 7);
  EXPECT_DOUBLE_EQ(agg.value_at(7), 1.0);
  EXPECT_NEAR(agg.total_mass(sim), 1.0, 1e-12);
  EXPECT_EQ(agg.epoch(), 2u);
}

TEST(Aggregation, NewNodesJoinWithZero) {
  sim::Simulator sim = hetero_sim(500, 15);
  support::RngStream rng(16);
  Aggregation agg({.rounds_per_epoch = 40});
  agg.start_epoch(sim, 0);
  support::RngStream churn_rng(17);
  net::add_nodes(sim.graph(), 100, {1, 10}, churn_rng);
  agg.run_round(sim, rng);
  // Mass still 1: arrivals contribute nothing (conservative effect).
  EXPECT_NEAR(agg.total_mass(sim), 1.0, 1e-9);
}

TEST(Aggregation, DeparturesRemoveMass) {
  sim::Simulator sim = hetero_sim(500, 18);
  support::RngStream rng(19);
  Aggregation agg({.rounds_per_epoch = 40});
  agg.start_epoch(sim, 0);
  for (int round = 0; round < 30; ++round) agg.run_round(sim, rng);
  support::RngStream churn_rng(20);
  net::remove_fraction(sim.graph(), 0.5, churn_rng);
  // Half the (well-mixed) mass leaves with the removed nodes.
  EXPECT_NEAR(agg.total_mass(sim), 0.5, 0.15);
}

TEST(Aggregation, GrowthIsTrackedAcrossEpochs) {
  // The paper: "fairly good adaptation to a growing network" because each
  // restart re-counts the current membership.
  sim::Simulator sim = hetero_sim(1000, 21);
  support::RngStream rng(22);
  support::RngStream churn_rng(23);
  Aggregation agg({.rounds_per_epoch = 60});
  (void)agg.run_epoch(sim, 0, rng);
  net::add_nodes(sim.graph(), 1000, {1, 10}, churn_rng);
  const Estimate e = agg.run_epoch(sim, 0, rng);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(support::quality_percent(e.value, 2000.0), 100.0, 5.0);
}

TEST(Aggregation, UnreachedNodeHasInvalidEstimate) {
  net::Graph g(4);
  g.add_edge(0, 1);  // {2,3} disconnected from the initiator
  g.add_edge(2, 3);
  sim::Simulator sim(std::move(g), 24);
  support::RngStream rng(25);
  Aggregation agg({.rounds_per_epoch = 20});
  agg.start_epoch(sim, 0);
  for (int round = 0; round < 20; ++round) agg.run_round(sim, rng);
  EXPECT_TRUE(agg.estimate_at(sim, 0).valid);
  EXPECT_FALSE(agg.estimate_at(sim, 2).valid);  // value stuck at 0
  // The initiator's component double-counts: two nodes share mass 1, so the
  // local estimate reads the component as size 2, not 4.
  EXPECT_NEAR(agg.estimate_at(sim, 0).value, 2.0, 1e-6);
}

TEST(Aggregation, PushOnlyVariantAlsoConvergesButSlower) {
  sim::Simulator sim = hetero_sim(1000, 26);
  support::RngStream rng_pp(27), rng_po(27);
  Aggregation push_pull({.rounds_per_epoch = 25, .push_pull = true});
  Aggregation push_only({.rounds_per_epoch = 25, .push_pull = false});
  push_pull.start_epoch(sim, 0);
  for (int r = 0; r < 25; ++r) push_pull.run_round(sim, rng_pp);
  const double disp_pp = push_pull.value_dispersion(sim);
  push_only.start_epoch(sim, 0);
  for (int r = 0; r < 25; ++r) push_only.run_round(sim, rng_po);
  const double disp_po = push_only.value_dispersion(sim);
  EXPECT_LT(disp_pp, disp_po);  // push-pull mixes faster
  EXPECT_NEAR(push_only.total_mass(sim), 1.0, 1e-9);  // still conservative
}

TEST(Aggregation, EstimateAtDeadNodeInvalid) {
  sim::Simulator sim = hetero_sim(100, 28);
  Aggregation agg({.rounds_per_epoch = 10});
  agg.start_epoch(sim, 0);
  sim.graph().remove_node(42);
  EXPECT_FALSE(agg.estimate_at(sim, 42).valid);
  EXPECT_FALSE(agg.estimate_at(sim, 9999).valid);
}

// Convergence-speed property: rounds to 99% quality grows ~log N (paper: 40
// rounds at 1e5, 50 at 1e6).
using ConvergenceCase = std::tuple<std::size_t, std::uint64_t>;

class AggregationConvergence
    : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(AggregationConvergence, ReachesOnePercentWithinBudget) {
  const auto& [nodes, seed] = GetParam();
  sim::Simulator sim = hetero_sim(nodes, seed);
  support::RngStream rng(seed ^ 0x777);
  Aggregation agg({.rounds_per_epoch = 60});
  agg.start_epoch(sim, 0);
  std::uint32_t converged_at = 0;
  for (std::uint32_t round = 1; round <= 60; ++round) {
    agg.run_round(sim, rng);
    const Estimate e = agg.estimate_at(sim, 0);
    if (e.valid &&
        std::abs(support::quality_percent(e.value, static_cast<double>(nodes)) -
                 100.0) <= 1.0) {
      converged_at = round;
      break;
    }
  }
  ASSERT_GT(converged_at, 0u) << "did not converge in 60 rounds";
  EXPECT_LE(converged_at, 45u);  // paper: ~40 at 1e5; small graphs faster
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregationConvergence,
    ::testing::Combine(::testing::Values(std::size_t{1000}, std::size_t{10000},
                                         std::size_t{50000}),
                       ::testing::Values(std::uint64_t{5}, std::uint64_t{55})),
    [](const ::testing::TestParamInfo<ConvergenceCase>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace p2pse::est
