#include "p2pse/est/sample_collide.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "p2pse/net/builders.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

net::Graph clique(std::size_t n) {
  net::Graph g(n);
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

TEST(SampleCollideConfig, Validation) {
  EXPECT_THROW(SampleCollide({.timer = 0.0}), std::invalid_argument);
  EXPECT_THROW(SampleCollide({.timer = -1.0}), std::invalid_argument);
  EXPECT_THROW(SampleCollide({.timer = 1.0, .collisions = 0}),
               std::invalid_argument);
}

TEST(SampleCollideWalk, IsolatedInitiatorSendsNoMessages) {
  // An isolated node keeps the walk message and samples itself locally:
  // no walk step and no reply ever crosses the network, so Table-1-style
  // overhead counts must stay at zero in this degenerate case.
  sim::Simulator sim(net::Graph(1), 9);
  support::RngStream rng(3);
  const SampleCollide sc({.timer = 10.0, .collisions = 1});
  const std::uint64_t before = sim.meter().total();
  const WalkSample ws = sc.sample(sim, 0, rng);
  EXPECT_EQ(ws.node, 0u);
  EXPECT_EQ(ws.steps, 0u);
  EXPECT_EQ(sim.meter().since(before), 0u);
}

TEST(SampleCollideWalk, TerminatesAndCountsMessages) {
  sim::Simulator sim = hetero_sim(1000, 1);
  support::RngStream rng(2);
  const SampleCollide sc({.timer = 10.0, .collisions = 1});
  const std::uint64_t before = sim.meter().total();
  const WalkSample ws = sc.sample(sim, 0, rng);
  EXPECT_TRUE(sim.graph().is_alive(ws.node));
  EXPECT_GT(ws.steps, 0u);
  // steps walk messages + 1 sample reply.
  EXPECT_EQ(sim.meter().since(before), ws.steps + 1);
}

TEST(SampleCollideWalk, LengthScalesWithTimer) {
  sim::Simulator sim = hetero_sim(2000, 3);
  support::RngStream rng(4);
  const auto mean_steps = [&](double timer) {
    const SampleCollide sc({.timer = timer, .collisions = 1});
    support::RunningStats steps;
    for (int i = 0; i < 300; ++i) {
      steps.add(static_cast<double>(sc.sample(sim, 0, rng).steps));
    }
    return steps.mean();
  };
  const double short_walk = mean_steps(1.0);
  const double long_walk = mean_steps(10.0);
  // Expected steps ~ T * mean degree: the ratio should be near 10.
  EXPECT_GT(long_walk, 5.0 * short_walk);
  // Expected length ~ T * avg_degree (~7.2): sanity band.
  EXPECT_NEAR(long_walk, 72.0, 25.0);
}

TEST(SampleCollideWalk, IsolatedInitiatorSamplesItself) {
  net::Graph g(3);  // no edges at all
  sim::Simulator sim(std::move(g), 5);
  support::RngStream rng(6);
  const SampleCollide sc({.timer = 10.0, .collisions = 1});
  const WalkSample ws = sc.sample(sim, 1, rng);
  EXPECT_EQ(ws.node, 1u);
  EXPECT_EQ(ws.steps, 0u);
}

TEST(SampleCollideWalk, UniformOnCliqueChiSquare) {
  // On a clique every node has equal degree; the sampler must be uniform.
  sim::Simulator sim(clique(50), 7);
  support::RngStream rng(8);
  const SampleCollide sc({.timer = 10.0, .collisions = 1});
  std::vector<std::uint64_t> counts(50, 0);
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[sc.sample(sim, 0, rng).node];
  // df = 49; P(chi2 > 90) < 2e-4.
  EXPECT_LT(support::chi_square_uniform(counts), 90.0);
}

TEST(SampleCollideWalk, NearUniformOnHeterogeneousGraphWithLargeT) {
  // The estimator's asymptotic unbiasedness claim: with T=10 the empirical
  // distribution over a 300-node heterogeneous graph is close to uniform.
  sim::Simulator sim = hetero_sim(300, 9);
  support::RngStream rng(10);
  const SampleCollide sc({.timer = 10.0, .collisions = 1});
  std::vector<std::uint64_t> counts(sim.graph().slot_count(), 0);
  constexpr int kSamples = 150000;
  for (int i = 0; i < kSamples; ++i) ++counts[sc.sample(sim, 0, rng).node];
  const double chi2 = support::chi_square_uniform(counts);
  const double df = static_cast<double>(sim.graph().size() - 1);
  // chi2/df close to 1 for a uniform sampler; allow generous slack.
  EXPECT_LT(chi2 / df, 1.35);
}

TEST(SampleCollideWalk, SmallTIsBiasedTowardHighDegree) {
  // Control experiment for the one above: with a tiny timer the walk barely
  // moves, so the distribution must be visibly non-uniform.
  sim::Simulator sim = hetero_sim(300, 11);
  support::RngStream rng(12);
  const SampleCollide sc({.timer = 0.2, .collisions = 1});
  std::vector<std::uint64_t> counts(sim.graph().slot_count(), 0);
  constexpr int kSamples = 150000;
  for (int i = 0; i < kSamples; ++i) ++counts[sc.sample(sim, 0, rng).node];
  const double chi2 = support::chi_square_uniform(counts);
  const double df = static_cast<double>(sim.graph().size() - 1);
  EXPECT_GT(chi2 / df, 2.0);
}

TEST(SampleCollideEstimate, QuadraticFormula) {
  // With forced sample streams the formula is C^2/(2l); verify through the
  // public interface on a tiny deterministic case: a single-node "graph"
  // samples itself forever, so l collisions take exactly l+1 samples.
  net::Graph g(1);
  sim::Simulator sim(std::move(g), 13);
  support::RngStream rng(14);
  const SampleCollide sc({.timer = 10.0, .collisions = 4});
  const Estimate e = sc.estimate_once(sim, 0, rng);
  ASSERT_TRUE(e.valid);
  // 5 samples, 4 collisions: 25 / 8.
  EXPECT_DOUBLE_EQ(e.value, 25.0 / 8.0);
}

TEST(SampleCollideEstimate, AccurateOnMidSizeGraph) {
  sim::Simulator sim = hetero_sim(20000, 15);
  support::RngStream rng(16);
  const SampleCollide sc({.timer = 10.0, .collisions = 200});
  support::RunningStats quality;
  for (int i = 0; i < 5; ++i) {
    const Estimate e = sc.estimate_once(sim, 0, rng);
    ASSERT_TRUE(e.valid);
    quality.add(support::quality_percent(e.value, 20000.0));
  }
  // Paper: oneShot within ~10%, occasional 20% peaks. Mean of 5 within 15%.
  EXPECT_NEAR(quality.mean(), 100.0, 15.0);
}

TEST(SampleCollideEstimate, CostMatchesSqrtLaw) {
  // C ~ sqrt(2 l N) samples, each costing ~T*avg_degree+1 messages.
  sim::Simulator sim = hetero_sim(10000, 17);
  support::RngStream rng(18);
  const SampleCollide sc({.timer = 10.0, .collisions = 50});
  const Estimate e = sc.estimate_once(sim, 0, rng);
  ASSERT_TRUE(e.valid);
  const double expected_samples = std::sqrt(2.0 * 50 * 10000.0);
  const double expected_msgs = expected_samples * (10.0 * 7.2 + 1.0);
  EXPECT_GT(static_cast<double>(e.messages), 0.4 * expected_msgs);
  EXPECT_LT(static_cast<double>(e.messages), 2.5 * expected_msgs);
}

TEST(SampleCollideEstimate, DeadInitiatorIsInvalid) {
  sim::Simulator sim = hetero_sim(100, 19);
  sim.graph().remove_node(7);
  support::RngStream rng(20);
  const SampleCollide sc({.timer = 10.0, .collisions = 5});
  const Estimate e = sc.estimate_once(sim, 7, rng);
  EXPECT_FALSE(e.valid);
}

TEST(SampleCollideEstimate, SafetyBoundProducesInvalid) {
  sim::Simulator sim = hetero_sim(5000, 21);
  support::RngStream rng(22);
  SampleCollideConfig config{.timer = 10.0, .collisions = 200};
  config.max_samples = 10;  // far too few to reach 200 collisions
  const SampleCollide sc(config);
  const Estimate e = sc.estimate_once(sim, 0, rng);
  EXPECT_FALSE(e.valid);
}

TEST(SampleCollideMle, SolvesKnownEquation) {
  // sum_{d=0}^{D-1} d/(N-d) = l. For D=2, l=1: 1/(N-1) = 1 -> N = 2.
  EXPECT_NEAR(SampleCollide::solve_mle(2, 1), 2.0, 1e-3);
  // For D=3, l=1: 1/(N-1) + 2/(N-2) = 1 -> N^2 - 6N + 6 = 0 -> N = 3+sqrt(3).
  EXPECT_NEAR(SampleCollide::solve_mle(3, 1), 3.0 + std::sqrt(3.0), 1e-3);
}

TEST(SampleCollideMle, BoundaryWhenCollisionsDominate) {
  // Tiny distinct count with huge l: the MLE pins to the boundary N = D.
  EXPECT_NEAR(SampleCollide::solve_mle(5, 200), 5.0, 0.2);
}

TEST(SampleCollideMle, DegenerateInputs) {
  EXPECT_EQ(SampleCollide::solve_mle(0, 5), 0.0);
  EXPECT_EQ(SampleCollide::solve_mle(5, 0), 0.0);
  EXPECT_NEAR(SampleCollide::solve_mle(1, 3), 1.0, 0.1);
}

TEST(SampleCollideMle, AgreesWithQuadraticInTypicalRegime) {
  // When C << N, the MLE and the quadratic estimator coincide to first
  // order. D = C - l with C = sqrt(2 l N).
  const std::uint64_t l = 200;
  const double n = 100000.0;
  const auto c = static_cast<std::uint64_t>(std::sqrt(2.0 * l * n));
  const double quadratic =
      static_cast<double>(c) * static_cast<double>(c) / (2.0 * l);
  const double mle = SampleCollide::solve_mle(c - l, l);
  EXPECT_NEAR(mle / quadratic, 1.0, 0.05);
}

TEST(SampleCollideEstimate, MleVariantRunsEndToEnd) {
  sim::Simulator sim = hetero_sim(5000, 23);
  support::RngStream rng(24);
  const SampleCollide sc({.timer = 10.0,
                          .collisions = 50,
                          .estimator = CollisionEstimator::kMaximumLikelihood});
  const Estimate e = sc.estimate_once(sim, 0, rng);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(support::quality_percent(e.value, 5000.0), 100.0, 35.0);
}

// Property sweep: estimate quality envelope across graph size, l, and seeds.
using AccuracyCase = std::tuple<std::size_t, std::uint32_t, std::uint64_t>;

class SampleCollideAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(SampleCollideAccuracy, WithinEnvelope) {
  const auto& [nodes, l, seed] = GetParam();
  sim::Simulator sim = hetero_sim(nodes, seed);
  support::RngStream rng(seed ^ 0x5555);
  const SampleCollide sc({.timer = 10.0, .collisions = l});
  support::RunningStats quality;
  for (int i = 0; i < 3; ++i) {
    const Estimate e = sc.estimate_once(sim, 0, rng);
    ASSERT_TRUE(e.valid);
    quality.add(support::quality_percent(e.value, static_cast<double>(nodes)));
  }
  // Relative std error ~ sqrt(1/(2l)): ~22% for l=10, ~7% for l=100.
  const double tolerance = l >= 100 ? 25.0 : 60.0;
  EXPECT_NEAR(quality.mean(), 100.0, tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleCollideAccuracy,
    ::testing::Combine(::testing::Values(std::size_t{2000}, std::size_t{10000}),
                       ::testing::Values(std::uint32_t{10}, std::uint32_t{100}),
                       ::testing::Values(std::uint64_t{3}, std::uint64_t{41},
                                         std::uint64_t{97})),
    [](const ::testing::TestParamInfo<AccuracyCase>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace p2pse::est
