#include "p2pse/est/hops_sampling.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "p2pse/net/analysis.hpp"
#include "p2pse/net/builders.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

TEST(HopsSamplingConfig, Validation) {
  HopsSamplingConfig c;
  c.gossip_to = 0;
  EXPECT_THROW(HopsSampling{c}, std::invalid_argument);
  c = {};
  c.gossip_for = 0;
  EXPECT_THROW(HopsSampling{c}, std::invalid_argument);
  c = {};
  c.gossip_until = 0;
  EXPECT_THROW(HopsSampling{c}, std::invalid_argument);
}

TEST(HopsSampling, ReplyProbabilitySchedule) {
  const HopsSampling hs({});  // gossipTo=2, minHopsReporting=5
  EXPECT_DOUBLE_EQ(hs.reply_probability(0), 1.0);
  EXPECT_DOUBLE_EQ(hs.reply_probability(5), 1.0);
  EXPECT_DOUBLE_EQ(hs.reply_probability(6), 0.5);
  EXPECT_DOUBLE_EQ(hs.reply_probability(7), 0.25);
  EXPECT_DOUBLE_EQ(hs.reply_probability(9), 1.0 / 16.0);
}

TEST(HopsSampling, PaperExampleReplyProbability) {
  // Paper: "if minHopsReporting = 2, only 25% of nodes with distance 4 will
  // report back".
  HopsSamplingConfig config;
  config.min_hops_reporting = 2;
  const HopsSampling hs(config);
  EXPECT_DOUBLE_EQ(hs.reply_probability(4), 0.25);
}

TEST(HopsSampling, DeadInitiatorIsInvalid) {
  sim::Simulator sim = hetero_sim(200, 1);
  sim.graph().remove_node(3);
  support::RngStream rng(2);
  const HopsSampling hs({});
  const HopsSamplingResult r = hs.run_once(sim, 3, rng);
  EXPECT_FALSE(r.estimate.valid);
}

TEST(HopsSampling, IsolatedInitiatorCountsItself) {
  net::Graph g(5);  // edgeless overlay
  sim::Simulator sim(std::move(g), 3);
  support::RngStream rng(4);
  const HopsSampling hs({});
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  ASSERT_TRUE(r.estimate.valid);
  EXPECT_DOUBLE_EQ(r.estimate.value, 1.0);  // sees only itself
  EXPECT_EQ(r.reached, 1u);
}

TEST(HopsSampling, SpreadCoversMostButNotAllNodes) {
  // With gossipTo=2/gossipFor=1/gossipUntil=1 the spread is sub-flooding;
  // the paper reports ~11% unreached at 1e5. Check the same regime holds.
  sim::Simulator sim = hetero_sim(20000, 5);
  support::RngStream rng(6);
  const HopsSampling hs({});
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  const double coverage =
      static_cast<double>(r.reached) / static_cast<double>(sim.graph().size());
  EXPECT_GT(coverage, 0.70);
  EXPECT_LT(coverage, 0.99);
}

TEST(HopsSampling, HigherFanoutReachesEveryone) {
  HopsSamplingConfig config;
  config.gossip_to = 10;
  config.gossip_until = 4;
  sim::Simulator sim = hetero_sim(5000, 7);
  support::RngStream rng(8);
  const HopsSampling hs(config);
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  // With fanout=max degree and generous gossipUntil the spread floods the
  // connected component.
  const double coverage =
      static_cast<double>(r.reached) / static_cast<double>(sim.graph().size());
  EXPECT_GT(coverage, 0.995);
}

TEST(HopsSampling, MessageCostIsOrderTwoN) {
  sim::Simulator sim = hetero_sim(20000, 9);
  support::RngStream rng(10);
  const HopsSampling hs({});
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  const double n = static_cast<double>(sim.graph().size());
  EXPECT_GT(static_cast<double>(r.estimate.messages), 1.0 * n);
  EXPECT_LT(static_cast<double>(r.estimate.messages), 3.0 * n);
}

TEST(HopsSampling, UnderEstimatesOnAverage) {
  // The paper's headline observation for this algorithm.
  sim::Simulator sim = hetero_sim(20000, 11);
  support::RngStream rng(12);
  const HopsSampling hs({});
  support::RunningStats signed_err;
  for (int i = 0; i < 20; ++i) {
    const HopsSamplingResult r = hs.run_once(sim, 0, rng);
    signed_err.add(support::quality_percent(r.estimate.value, 20000.0) - 100.0);
  }
  EXPECT_LT(signed_err.mean(), 0.0);
}

TEST(HopsSampling, OracleDistancesAreUnbiased) {
  // §V: "we verified our intuition by giving the accurate distance ... and
  // the resulting size estimation was correct".
  sim::Simulator sim = hetero_sim(20000, 13);
  support::RngStream rng(14);
  HopsSamplingConfig config;
  config.oracle_distances = true;
  const HopsSampling hs(config);
  support::RunningStats quality;
  for (int i = 0; i < 20; ++i) {
    const HopsSamplingResult r = hs.run_once(sim, 0, rng);
    ASSERT_TRUE(r.estimate.valid);
    // Full participation of the initiator's component (a handful of nodes
    // may be disconnected in the builder's output).
    EXPECT_GE(static_cast<double>(r.reached),
              0.999 * static_cast<double>(sim.graph().size()));
    quality.add(support::quality_percent(r.estimate.value, 20000.0));
  }
  EXPECT_NEAR(quality.mean(), 100.0, 6.0);
}

TEST(HopsSampling, OracleOnCliqueIsExact) {
  // Every node at distance 1 <= minHopsReporting: all reply with p=1, so the
  // estimate equals N exactly — no randomness involved.
  net::Graph g(30);
  for (net::NodeId a = 0; a < 30; ++a) {
    for (net::NodeId b = a + 1; b < 30; ++b) g.add_edge(a, b);
  }
  sim::Simulator sim(std::move(g), 15);
  support::RngStream rng(16);
  HopsSamplingConfig config;
  config.oracle_distances = true;
  const HopsSampling hs(config);
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  EXPECT_DOUBLE_EQ(r.estimate.value, 30.0);
  EXPECT_EQ(r.replies, 29u);
}

TEST(HopsSampling, GossipDistancesOverestimateBfsDistances) {
  // The fanout-2 spread cannot yield shorter distances than BFS; this is
  // the second source of under-estimation the paper identifies.
  sim::Simulator sim = hetero_sim(3000, 17);
  support::RngStream rng(18);
  HopsSamplingConfig config;
  config.gossip_to = 10;
  config.gossip_until = 4;  // near-flood so almost everyone is reached
  const HopsSampling hs(config);
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  const auto bfs = net::bfs_distances(sim.graph(), 0);
  EXPECT_GE(r.max_distance,
            *std::max_element(bfs.begin(), bfs.end(),
                              [](std::uint32_t a, std::uint32_t b) {
                                if (a == net::kUnreached) return true;
                                if (b == net::kUnreached) return false;
                                return a < b;
                              }) -
                1);
}

TEST(HopsSampling, DisconnectedComponentNeverPolled) {
  net::Graph g(10);
  for (net::NodeId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);  // 0..4
  for (net::NodeId i = 5; i + 1 < 10; ++i) g.add_edge(i, i + 1);  // 5..9
  sim::Simulator sim(std::move(g), 19);
  support::RngStream rng(20);
  HopsSamplingConfig config;
  config.gossip_to = 4;
  config.gossip_until = 4;
  const HopsSampling hs(config);
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  EXPECT_LE(r.reached, 5u);
  EXPECT_LE(r.estimate.value, 5.0 + 1e-9);
}

// Property sweep: coverage and cost envelopes across sizes and seeds.
using HsCase = std::tuple<std::size_t, std::uint64_t>;

class HopsSamplingProperties : public ::testing::TestWithParam<HsCase> {};

TEST_P(HopsSamplingProperties, CoverageAndCostEnvelope) {
  const auto& [nodes, seed] = GetParam();
  sim::Simulator sim = hetero_sim(nodes, seed);
  support::RngStream rng(seed ^ 0xa5a5);
  const HopsSampling hs({});
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  ASSERT_TRUE(r.estimate.valid);
  const double n = static_cast<double>(nodes);
  const double coverage = static_cast<double>(r.reached) / n;
  EXPECT_GT(coverage, 0.6);
  EXPECT_LT(static_cast<double>(r.estimate.messages), 3.0 * n);
  EXPECT_GT(r.estimate.value, 0.1 * n);
  EXPECT_LT(r.estimate.value, 3.0 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HopsSamplingProperties,
    ::testing::Combine(::testing::Values(std::size_t{2000}, std::size_t{8000},
                                         std::size_t{30000}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{77})),
    [](const ::testing::TestParamInfo<HsCase>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace p2pse::est
