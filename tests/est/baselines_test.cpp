// Tests for the two baseline estimators: RandomTour and InvertedBirthday.
#include <gtest/gtest.h>

#include <cmath>

#include "p2pse/est/inverted_birthday.hpp"
#include "p2pse/est/random_tour.hpp"
#include "p2pse/est/sample_collide.hpp"
#include "p2pse/net/builders.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

net::Graph ring(std::size_t n) {
  net::Graph g(n);
  for (net::NodeId i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<net::NodeId>((i + 1) % n));
  }
  return g;
}

TEST(RandomTour, ExactOnTwoNodeGraph) {
  net::Graph g(2);
  g.add_edge(0, 1);
  sim::Simulator sim(std::move(g), 1);
  support::RngStream rng(2);
  const RandomTour tour;
  const Estimate e = tour.estimate_once(sim, 0, rng);
  ASSERT_TRUE(e.valid);
  // Tour: 0 -> 1 -> 0. Phi = 1/1 + 1/1 = 2, deg(0)=1 -> N-hat = 2. Exact.
  EXPECT_DOUBLE_EQ(e.value, 2.0);
  EXPECT_EQ(e.messages, 2u);
}

TEST(RandomTour, UnbiasedOnRing) {
  // On a ring all degrees are 2; E[N-hat] = N. Average many tours.
  sim::Simulator sim(ring(50), 3);
  support::RngStream rng(4);
  const RandomTour tour;
  support::RunningStats estimates;
  for (int i = 0; i < 3000; ++i) {
    const Estimate e = tour.estimate_once(sim, 0, rng);
    ASSERT_TRUE(e.valid);
    estimates.add(e.value);
  }
  EXPECT_NEAR(estimates.mean(), 50.0, 5.0);
}

TEST(RandomTour, UnbiasedOnHeterogeneousGraph) {
  sim::Simulator sim = hetero_sim(500, 5);
  support::RngStream rng(6);
  const RandomTour tour;
  support::RunningStats estimates;
  for (int i = 0; i < 4000; ++i) {
    const Estimate e = tour.estimate_once(sim, 0, rng);
    if (e.valid) estimates.add(e.value);
  }
  EXPECT_NEAR(estimates.mean(), 500.0, 60.0);
}

TEST(RandomTour, CostScalesWithEdgesOverDegree) {
  // E[tour length] = 2|E|/deg(initiator).
  sim::Simulator sim = hetero_sim(2000, 7);
  support::RngStream rng(8);
  const RandomTour tour;
  support::RunningStats steps;
  const net::NodeId initiator = 0;
  for (int i = 0; i < 2000; ++i) {
    const Estimate e = tour.estimate_once(sim, initiator, rng);
    if (e.valid) steps.add(static_cast<double>(e.messages));
  }
  const double expected = 2.0 * static_cast<double>(sim.graph().edge_count()) /
                          static_cast<double>(sim.graph().degree(initiator));
  EXPECT_NEAR(steps.mean(), expected, 0.25 * expected);
}

TEST(RandomTour, InvalidForDeadOrIsolatedInitiator) {
  sim::Simulator sim = hetero_sim(100, 9);
  support::RngStream rng(10);
  const RandomTour tour;
  sim.graph().remove_node(5);
  EXPECT_FALSE(tour.estimate_once(sim, 5, rng).valid);
  net::Graph lonely(1);
  sim::Simulator sim2(std::move(lonely), 11);
  EXPECT_FALSE(tour.estimate_once(sim2, 0, rng).valid);
}

TEST(RandomTour, MaxStepsBoundProducesInvalid) {
  sim::Simulator sim = hetero_sim(5000, 12);
  support::RngStream rng(13);
  const RandomTour tour({.max_steps = 3});  // absurdly small
  int valid = 0;
  for (int i = 0; i < 50; ++i) valid += tour.estimate_once(sim, 0, rng).valid;
  EXPECT_LT(valid, 50);  // most tours cannot return within 3 hops
}

TEST(RandomTour, CostGrowsLinearlyWhileSampleCollideGrowsAsSqrt) {
  // The reason the paper picked Sample&Collide (§II): Random Tour's per-run
  // cost is Theta(|E|/deg) = Theta(N), Sample&Collide's is Theta(sqrt(N)).
  // Quadrupling N must roughly quadruple the tour cost but only ~double the
  // Sample&Collide cost.
  const auto mean_cost = [](std::size_t n, auto&& estimator,
                            std::uint64_t seed) {
    sim::Simulator sim = hetero_sim(n, seed);
    support::RngStream rng(seed ^ 0x9999);
    support::RunningStats cost;
    for (int i = 0; i < 150; ++i) {
      const Estimate e = estimator(sim, rng);
      if (e.valid) cost.add(static_cast<double>(e.messages));
    }
    return cost.mean();
  };
  const RandomTour tour;
  const auto run_tour = [&tour](sim::Simulator& s, support::RngStream& r) {
    return tour.estimate_once(s, 0, r);
  };
  const SampleCollide sc({.timer = 10.0, .collisions = 1});
  const auto run_sc = [&sc](sim::Simulator& s, support::RngStream& r) {
    return sc.estimate_once(s, 0, r);
  };
  const double tour_ratio =
      mean_cost(8000, run_tour, 14) / mean_cost(2000, run_tour, 14);
  const double sc_ratio =
      mean_cost(8000, run_sc, 14) / mean_cost(2000, run_sc, 14);
  EXPECT_GT(tour_ratio, 2.4);            // ~4x (linear), modulo degree noise
  EXPECT_LT(sc_ratio, 3.0);              // ~2x (sqrt)
  EXPECT_GT(tour_ratio, 1.2 * sc_ratio); // the scaling gap itself
}

TEST(InvertedBirthday, ConfigValidation) {
  EXPECT_THROW(InvertedBirthday({.walk_length = 10, .collisions = 0}),
               std::invalid_argument);
}

TEST(InvertedBirthday, FirstCollisionFormula) {
  // Single-node graph: first sample is the node, second collides -> C=2,
  // N-hat = 4/2 = 2 (the classic estimator's small-N bias, exposed plainly).
  net::Graph g(1);
  sim::Simulator sim(std::move(g), 16);
  support::RngStream rng(17);
  const InvertedBirthday ibp({.walk_length = 5, .collisions = 1});
  const Estimate e = ibp.estimate_once(sim, 0, rng);
  ASSERT_TRUE(e.valid);
  EXPECT_DOUBLE_EQ(e.value, 2.0);
}

TEST(InvertedBirthday, ReasonableOnNearHomogeneousGraph) {
  // With near-equal degrees the biased sampler is nearly uniform, so the
  // estimate lands in the right ballpark (averaged over runs).
  support::RngStream build(18);
  sim::Simulator sim(net::build_homogeneous_random({3000, 7}, build), 19);
  support::RngStream rng(20);
  const InvertedBirthday ibp({.walk_length = 50, .collisions = 20});
  support::RunningStats quality;
  for (int i = 0; i < 10; ++i) {
    const Estimate e = ibp.estimate_once(sim, 0, rng);
    ASSERT_TRUE(e.valid);
    quality.add(support::quality_percent(e.value, 3000.0));
  }
  EXPECT_NEAR(quality.mean(), 100.0, 35.0);
}

TEST(InvertedBirthday, UnderEstimatesOnScaleFreeGraph) {
  // Degree-biased sampling concentrates on hubs: collisions arrive early and
  // the estimate deflates — the failure mode Sample&Collide fixes.
  support::RngStream build(21);
  sim::Simulator sim(net::build_barabasi_albert({3000, 3}, build), 22);
  support::RngStream rng(23);
  const InvertedBirthday ibp({.walk_length = 50, .collisions = 20});
  support::RunningStats quality;
  for (int i = 0; i < 10; ++i) {
    const Estimate e = ibp.estimate_once(sim, 0, rng);
    ASSERT_TRUE(e.valid);
    quality.add(support::quality_percent(e.value, 3000.0));
  }
  EXPECT_LT(quality.mean(), 80.0);
}

TEST(InvertedBirthday, SampleCollideBeatsItOnScaleFree) {
  support::RngStream build(24);
  sim::Simulator sim(net::build_barabasi_albert({3000, 3}, build), 25);
  support::RngStream rng_a(26), rng_b(26);
  const InvertedBirthday ibp({.walk_length = 50, .collisions = 20});
  const SampleCollide sc({.timer = 10.0, .collisions = 20});
  support::RunningStats ibp_err, sc_err;
  for (int i = 0; i < 10; ++i) {
    ibp_err.add(std::abs(support::quality_percent(
                    ibp.estimate_once(sim, 0, rng_a).value, 3000.0) -
                100.0));
    sc_err.add(std::abs(support::quality_percent(
                   sc.estimate_once(sim, 0, rng_b).value, 3000.0) -
               100.0));
  }
  EXPECT_LT(sc_err.mean(), ibp_err.mean());
}

TEST(InvertedBirthday, DeadInitiatorInvalid) {
  sim::Simulator sim = hetero_sim(100, 27);
  sim.graph().remove_node(9);
  support::RngStream rng(28);
  const InvertedBirthday ibp({});
  EXPECT_FALSE(ibp.estimate_once(sim, 9, rng).valid);
}

}  // namespace
}  // namespace p2pse::est
