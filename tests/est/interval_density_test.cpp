#include "p2pse/est/interval_density.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "p2pse/net/builders.hpp"
#include "p2pse/support/stats.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

TEST(IdentifierSpace, AssignsEveryAliveNode) {
  sim::Simulator sim = hetero_sim(500, 1);
  support::RngStream rng(2);
  const IdentifierSpace ids(sim.graph(), rng);
  EXPECT_EQ(ids.population(), 500u);
  for (const net::NodeId node : sim.graph().alive_nodes()) {
    const double id = ids.id_of(node);
    EXPECT_GE(id, 0.0);
    EXPECT_LT(id, 1.0);
  }
}

TEST(IdentifierSpace, SuccessorsAreRingOrdered) {
  sim::Simulator sim = hetero_sim(200, 3);
  support::RngStream rng(4);
  const IdentifierSpace ids(sim.graph(), rng);
  const net::NodeId node = 7;
  const auto succ = ids.successors(node, 10);
  ASSERT_EQ(succ.size(), 10u);
  double prev = 0.0;
  for (const net::NodeId s : succ) {
    const double d = ids.ring_distance(node, s);
    EXPECT_GT(d, prev);  // strictly increasing ring distance
    prev = d;
  }
}

TEST(IdentifierSpace, SuccessorsClampToPopulation) {
  sim::Simulator sim(net::Graph(5), 5);  // ids need no edges
  support::RngStream rng(6);
  const IdentifierSpace ids(sim.graph(), rng);
  EXPECT_EQ(ids.successors(0, 100).size(), 4u);
}

TEST(IdentifierSpace, RemoveAndInsertMaintainRing) {
  sim::Simulator sim = hetero_sim(100, 7);
  support::RngStream rng(8);
  IdentifierSpace ids(sim.graph(), rng);
  ids.remove(42);
  EXPECT_EQ(ids.population(), 99u);
  EXPECT_TRUE(std::isnan(ids.id_of(42)));
  // Successor walks never return the removed node.
  for (const net::NodeId s : ids.successors(0, 98)) EXPECT_NE(s, 42u);
  ids.insert(42, rng);
  EXPECT_EQ(ids.population(), 100u);
  EXPECT_FALSE(std::isnan(ids.id_of(42)));
}

TEST(IntervalDensity, ValidatesConfig) {
  EXPECT_THROW(IntervalDensity({.leafset = 1}), std::invalid_argument);
  EXPECT_THROW(IntervalDensity({.leafset = 0}), std::invalid_argument);
}

TEST(IntervalDensity, UnbiasedAcrossNodes) {
  sim::Simulator sim = hetero_sim(5000, 9);
  support::RngStream rng(10);
  const IdentifierSpace ids(sim.graph(), rng);
  const IntervalDensity est({.leafset = 16});
  support::RunningStats quality;
  for (int i = 0; i < 300; ++i) {
    const net::NodeId node = sim.graph().random_alive(rng);
    const Estimate e = est.estimate_once(sim, ids, node);
    ASSERT_TRUE(e.valid);
    quality.add(support::quality_percent(e.value, 5000.0));
  }
  // (k-1)/d_k is unbiased; relative std ~ 1/sqrt(k-2) per sample, so the
  // mean of 300 samples is tight.
  EXPECT_NEAR(quality.mean(), 100.0, 6.0);
}

TEST(IntervalDensity, BiggerLeafsetIsMorePrecise) {
  sim::Simulator sim = hetero_sim(5000, 11);
  support::RngStream rng(12);
  const IdentifierSpace ids(sim.graph(), rng);
  const auto spread = [&](std::size_t k) {
    const IntervalDensity est({.leafset = k});
    support::RunningStats err;
    for (int i = 0; i < 200; ++i) {
      const Estimate e =
          est.estimate_once(sim, ids, sim.graph().random_alive(rng));
      err.add(std::abs(support::quality_percent(e.value, 5000.0) - 100.0));
    }
    return err.mean();
  };
  EXPECT_LT(spread(64), spread(4));
}

TEST(IntervalDensity, CostIsLeafsetProbes) {
  sim::Simulator sim = hetero_sim(1000, 13);
  support::RngStream rng(14);
  const IdentifierSpace ids(sim.graph(), rng);
  const IntervalDensity est({.leafset = 16});
  const Estimate e = est.estimate_once(sim, ids, 0);
  EXPECT_EQ(e.messages, 16u);
}

TEST(IntervalDensity, FarCheaperThanGenericSchemes) {
  // The paper's §I point: identifier-based estimation is nearly free — but
  // only exists on structured overlays.
  sim::Simulator sim = hetero_sim(5000, 15);
  support::RngStream rng(16);
  const IdentifierSpace ids(sim.graph(), rng);
  const IntervalDensity est({.leafset = 16});
  const Estimate e = est.estimate_once(sim, ids, 0);
  EXPECT_LT(e.messages * 100, 5000u);  // orders of magnitude below O(N)
}

TEST(IntervalDensity, DeadNodeIsInvalid) {
  sim::Simulator sim = hetero_sim(100, 17);
  support::RngStream rng(18);
  IdentifierSpace ids(sim.graph(), rng);
  sim.graph().remove_node(9);
  ids.remove(9);
  const IntervalDensity est({.leafset = 8});
  EXPECT_FALSE(est.estimate_once(sim, ids, 9).valid);
}

TEST(IntervalDensity, TinyPopulations) {
  sim::Simulator sim(net::Graph(2), 19);
  support::RngStream rng(20);
  const IdentifierSpace ids(sim.graph(), rng);
  const IntervalDensity est({.leafset = 8});
  const Estimate e = est.estimate_once(sim, ids, 0);
  ASSERT_TRUE(e.valid);
  EXPECT_DOUBLE_EQ(e.value, 2.0);  // sees its single successor
}

TEST(IntervalDensity, TracksChurnThroughRingUpdates) {
  sim::Simulator sim = hetero_sim(2000, 21);
  support::RngStream rng(22);
  IdentifierSpace ids(sim.graph(), rng);
  // Remove half the population from graph + ring.
  std::vector<net::NodeId> victims(sim.graph().alive_nodes().begin(),
                                   sim.graph().alive_nodes().end());
  for (std::size_t i = 0; i < 1000; ++i) {
    sim.graph().remove_node(victims[i]);
    ids.remove(victims[i]);
  }
  const IntervalDensity est({.leafset = 16});
  support::RunningStats quality;
  for (int i = 0; i < 200; ++i) {
    const Estimate e =
        est.estimate_once(sim, ids, sim.graph().random_alive(rng));
    quality.add(support::quality_percent(e.value, 1000.0));
  }
  EXPECT_NEAR(quality.mean(), 100.0, 8.0);
}

}  // namespace
}  // namespace p2pse::est
