// EstimatorRegistry contract: every registered name round-trips through
// spec parsing + build + one real estimate, overrides reach the underlying
// configs, and typos (names or keys) are hard errors that list candidates.
#include "p2pse/est/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "p2pse/net/builders.hpp"
#include "p2pse/sim/simulator.hpp"

namespace p2pse::est {
namespace {

sim::Simulator small_sim(std::uint64_t seed = 11) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({300, 1, 6}, rng),
                        seed);
}

TEST(EstimatorRegistry, EveryNameBuildsAndProducesOneEstimate) {
  const auto& registry = EstimatorRegistry::global();
  const auto names = registry.names();
  ASSERT_GE(names.size(), 8u);
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    const auto estimator = registry.build(name);
    ASSERT_NE(estimator, nullptr);
    EXPECT_EQ(estimator->name(), name);
    EXPECT_FALSE(estimator->short_name().empty());
    EXPECT_FALSE(estimator->display_name().empty());
    EXPECT_FALSE(estimator->describe().empty());
    const auto copy = estimator->clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->name(), name);

    sim::Simulator sim = small_sim();
    support::RngStream rng(42);
    support::RngStream pick(43);
    const net::NodeId initiator = sim.graph().random_alive(pick);
    if (estimator->mode() == Estimator::Mode::kPoint) {
      const Estimate e = copy->estimate_point(sim, initiator, rng);
      EXPECT_TRUE(e.valid);
      EXPECT_GT(e.value, 0.0);
    } else {
      ASSERT_GT(copy->rounds_per_epoch(), 0u);
      copy->start_epoch(sim, initiator, rng);
      for (std::uint32_t r = 0; r < copy->rounds_per_epoch(); ++r) {
        copy->run_round(sim, rng);
      }
      const Estimate e = copy->epoch_estimate(sim, initiator);
      EXPECT_TRUE(e.valid);
      // A full epoch on a static 300-node overlay converges tightly.
      EXPECT_NEAR(e.value, 300.0, 60.0);
    }
  }
}

TEST(EstimatorRegistry, SpecParsingRoundTrips) {
  const EstimatorSpec spec = EstimatorSpec::parse("sample_collide:l=10,T=2");
  EXPECT_EQ(spec.name, "sample_collide");
  ASSERT_EQ(spec.overrides.size(), 2u);
  EXPECT_TRUE(spec.has("l"));
  EXPECT_TRUE(spec.has("T"));
  EXPECT_EQ(spec.canonical(), "sample_collide:l=10,T=2");

  const EstimatorSpec bare = EstimatorSpec::parse("aggregation");
  EXPECT_EQ(bare.name, "aggregation");
  EXPECT_TRUE(bare.overrides.empty());
  EXPECT_EQ(bare.canonical(), "aggregation");
}

TEST(EstimatorRegistry, SetDefaultDoesNotOverrideExplicitKeys) {
  EstimatorSpec spec = EstimatorSpec::parse("sample_collide:l=10");
  spec.set_default("l", "200");
  spec.set_default("T", "10");
  const auto estimator = EstimatorRegistry::global().build(spec);
  EXPECT_EQ(estimator->describe(), "l=10 T=10");
}

TEST(EstimatorRegistry, OverridesReachTheUnderlyingConfigs) {
  const auto& registry = EstimatorRegistry::global();
  EXPECT_EQ(registry.build("sample_collide:l=33,T=2.5")->describe(),
            "l=33 T=2.5");
  EXPECT_EQ(registry.build("aggregation:rounds=7")->rounds_per_epoch(), 7u);
  EXPECT_EQ(registry.build("aggregation_suite:rounds=9,instances=4")
                ->rounds_per_epoch(),
            9u);
  EXPECT_EQ(registry.build("hops_sampling:last_k=4")->describe(),
            "gossipTo=2 gossipFor=1 gossipUntil=1 minHopsReporting=5 lastK=4");
  EXPECT_EQ(registry.build("flat_polling:p=0.5")->describe(), "p=0.5");
}

TEST(EstimatorRegistry, UnknownNameListsCandidates) {
  try {
    (void)EstimatorRegistry::global().build("sample_colide");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sample_collide"), std::string::npos);
    EXPECT_NE(what.find("aggregation"), std::string::npos);
  }
}

TEST(EstimatorRegistry, UnknownKeyListsValidKeys) {
  try {
    (void)EstimatorRegistry::global().build("sample_collide:collisions=10");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("collisions"), std::string::npos);
    EXPECT_NE(what.find("l, T, estimator"), std::string::npos);
  }
}

TEST(EstimatorRegistry, MalformedValuesAreHardErrors) {
  EXPECT_THROW((void)EstimatorRegistry::global().build("sample_collide:l=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)EstimatorRegistry::global().build("sample_collide:l"),
               std::invalid_argument);
  EXPECT_THROW((void)EstimatorRegistry::global().build(""),
               std::invalid_argument);
  EXPECT_THROW(
      (void)EstimatorRegistry::global().build("aggregation_suite:combine=max"),
      std::invalid_argument);
}

TEST(EstimatorRegistry, ClonedSmoothingStateIsIndependent) {
  // A cloned HopsSampling estimator must not share its lastKruns window with
  // the prototype — replicas would otherwise contaminate each other.
  const auto proto = EstimatorRegistry::global().build("hops_sampling:last_k=3");
  sim::Simulator sim = small_sim();
  support::RngStream rng(5);
  support::RngStream pick(6);
  const net::NodeId initiator = sim.graph().random_alive(pick);

  const auto a = proto->clone();
  const Estimate first = a->estimate_point(sim, initiator, rng);
  // Feed `a` more samples so its window diverges from a fresh clone's.
  (void)a->estimate_point(sim, initiator, rng);
  (void)a->estimate_point(sim, initiator, rng);

  const auto b = proto->clone();
  support::RngStream rng2(5);
  sim::Simulator sim2 = small_sim();
  const Estimate fresh = b->estimate_point(sim2, initiator, rng2);
  EXPECT_DOUBLE_EQ(fresh.value, first.value);
}

TEST(EstimatorRegistry, KeysHelpKnowsEveryName) {
  const auto& registry = EstimatorRegistry::global();
  for (const auto& name : registry.names()) {
    EXPECT_FALSE(registry.keys_help(name).empty()) << name;
  }
  EXPECT_THROW((void)registry.keys_help("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace p2pse::est
