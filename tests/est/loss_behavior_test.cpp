// Per-protocol behavior on a lossy channel: termination, the timeout/retry
// machinery, mass conservation, and the direction each estimator degrades.
#include <gtest/gtest.h>

#include <cmath>

#include "p2pse/est/aggregation.hpp"
#include "p2pse/est/aggregation_suite.hpp"
#include "p2pse/est/flat_polling.hpp"
#include "p2pse/est/hops_sampling.hpp"
#include "p2pse/est/inverted_birthday.hpp"
#include "p2pse/est/random_tour.hpp"
#include "p2pse/est/sample_collide.hpp"
#include "p2pse/net/builders.hpp"
#include "p2pse/sim/simulator.hpp"

namespace p2pse::est {
namespace {

using support::RngStream;

sim::Simulator make_sim(std::size_t nodes, std::uint64_t seed,
                        double loss = 0.0, double latency = 0.0) {
  RngStream graph_rng(seed);
  sim::Simulator sim(
      net::build_heterogeneous_random({nodes, 1, 10}, graph_rng), seed + 1);
  sim::NetworkConfig config;
  config.loss = loss;
  config.latency = sim::LatencyModel::constant(latency);
  sim.set_network(config);
  return sim;
}

TEST(LossBehavior, SampleCollideTerminatesAndEstimatesUnderHeavyLoss) {
  sim::Simulator sim = make_sim(300, 11, /*loss=*/0.2);
  const SampleCollide sc({.timer = 4.0, .collisions = 20});
  RngStream rng(5);
  const Estimate e = sc.estimate_once(sim, 0, rng);
  ASSERT_TRUE(e.valid);
  EXPECT_GT(e.value, 0.0);
  // Lost walks and replies were retried/relaunched: some timeout waits must
  // show up in the measured delay even with zero per-hop latency.
  EXPECT_GT(e.delay, 0.0);
}

TEST(LossBehavior, SampleCollideExplicitIdealChannelIsBitIdentical) {
  sim::Simulator reliable = make_sim(300, 11);
  sim::Simulator routed = make_sim(300, 11, /*loss=*/0.0, /*latency=*/0.0);
  const SampleCollide sc({.timer = 4.0, .collisions = 20});
  RngStream rng_a(5), rng_b(5);
  const Estimate a = sc.estimate_once(reliable, 0, rng_a);
  const Estimate b = sc.estimate_once(routed, 0, rng_b);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(b.delay, 0.0);
}

TEST(LossBehavior, SampleCollideLossInflatesMessageCost) {
  const SampleCollideConfig config{.timer = 4.0, .collisions = 20};
  sim::Simulator reliable = make_sim(300, 11);
  sim::Simulator lossy = make_sim(300, 11, /*loss=*/0.2);
  const SampleCollide sc(config);
  RngStream rng_a(5), rng_b(5);
  const std::uint64_t msgs_reliable =
      sc.estimate_once(reliable, 0, rng_a).messages;
  const std::uint64_t msgs_lossy = sc.estimate_once(lossy, 0, rng_b).messages;
  EXPECT_GT(msgs_lossy, msgs_reliable);
}

TEST(LossBehavior, HopsSamplingCoverageAndEstimateShrinkWithLoss) {
  const HopsSampling hs({});
  double reached_avg[2] = {0.0, 0.0};
  double estimate_avg[2] = {0.0, 0.0};
  const double losses[2] = {0.0, 0.2};
  const int runs = 8;
  for (int variant = 0; variant < 2; ++variant) {
    sim::Simulator sim = make_sim(2000, 13, losses[variant]);
    RngStream rng(5);
    for (int i = 0; i < runs; ++i) {
      const HopsSamplingResult r = hs.run_once(sim, 0, rng);
      reached_avg[variant] += static_cast<double>(r.reached) / runs;
      estimate_avg[variant] += r.estimate.value / runs;
    }
  }
  EXPECT_LT(reached_avg[1], reached_avg[0]);
  EXPECT_LT(estimate_avg[1], estimate_avg[0]);
}

TEST(LossBehavior, HopsSamplingMeasuresSpreadDelayUnderLatency) {
  const HopsSampling hs({});
  sim::Simulator sim = make_sim(2000, 13, /*loss=*/0.0, /*latency=*/2.0);
  RngStream rng(5);
  const HopsSamplingResult r = hs.run_once(sim, 0, rng);
  // Parallel composition: delay tracks spread depth (rounds), not message
  // count — it must be at least one hop and far below messages * latency.
  EXPECT_GT(r.estimate.delay, 0.0);
  EXPECT_GE(r.estimate.delay, 2.0 * r.spread_rounds * 0.99);
  EXPECT_LT(r.estimate.delay,
            2.0 * static_cast<double>(r.estimate.messages));
  EXPECT_DOUBLE_EQ(r.estimate.delay, r.spread_delay + 2.0);
}

TEST(LossBehavior, FlatPollingRepliesShrinkWithLoss) {
  const FlatPolling poll({.reply_probability = 0.25});
  sim::Simulator reliable = make_sim(2000, 17);
  sim::Simulator lossy = make_sim(2000, 17, /*loss=*/0.2);
  RngStream rng_a(5), rng_b(5);
  double est_reliable = 0.0, est_lossy = 0.0;
  const int runs = 8;
  for (int i = 0; i < runs; ++i) {
    est_reliable += poll.run_once(reliable, 0, rng_a).estimate.value / runs;
    est_lossy += poll.run_once(lossy, 0, rng_b).estimate.value / runs;
  }
  EXPECT_LT(est_lossy, est_reliable);
}

TEST(LossBehavior, RandomTourEstimateSurvivesLossViaReliableHops) {
  const RandomTour tour;
  sim::Simulator reliable = make_sim(500, 19);
  sim::Simulator lossy = make_sim(500, 19, /*loss=*/0.3);
  RngStream rng_a(5), rng_b(5);
  const Estimate a = tour.estimate_once(reliable, 0, rng_a);
  const Estimate b = tour.estimate_once(lossy, 0, rng_b);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  // Hop-reliable forwarding: the identical tour and estimate, at a higher
  // message cost (retransmissions) and positive delay (timeout waits).
  EXPECT_DOUBLE_EQ(b.value, a.value);
  EXPECT_GT(b.messages, a.messages);
  EXPECT_GT(b.delay, 0.0);
}

TEST(LossBehavior, InvertedBirthdaySkipsSamplesWithLostReplies) {
  // loss=1 with bounded-ARQ replies: every sample reply is permanently
  // lost, so the initiator can never observe a collision — the safety
  // bound trips and the estimate reports invalid instead of hallucinating
  // samples it never received.
  sim::Simulator sim = make_sim(100, 37, /*loss=*/1.0);
  const InvertedBirthday ibp({.walk_length = 5, .collisions = 2,
                              .max_samples = 64});
  RngStream rng(5);
  const Estimate e = ibp.estimate_once(sim, 0, rng);
  EXPECT_FALSE(e.valid);
  // Each of the 64 attempts cost the initiator one timeout.
  EXPECT_DOUBLE_EQ(e.delay, 64 * sim.channel().config().timeout);
}

TEST(LossBehavior, AggregationConservesMassUnderLoss) {
  sim::Simulator sim = make_sim(500, 23, /*loss=*/0.3);
  Aggregation agg({.rounds_per_epoch = 10});
  RngStream rng(5);
  agg.start_epoch(sim, 0);
  for (int round = 0; round < 10; ++round) agg.run_round(sim, rng);
  // Ack-gated exchanges: a dropped push or pull masks the exchange, so the
  // epoch's unit of mass is intact and 1/value stays meaningful.
  EXPECT_NEAR(agg.total_mass(sim), 1.0, 1e-9);
}

TEST(LossBehavior, AggregationPushOnlyAlsoConservesMassUnderLoss) {
  sim::Simulator sim = make_sim(500, 23, /*loss=*/0.3);
  Aggregation agg({.rounds_per_epoch = 10, .push_pull = false});
  RngStream rng(5);
  agg.start_epoch(sim, 0);
  for (int round = 0; round < 10; ++round) agg.run_round(sim, rng);
  EXPECT_NEAR(agg.total_mass(sim), 1.0, 1e-9);
}

TEST(LossBehavior, AggregationConvergesSlowerUnderLoss) {
  const int rounds = 20;
  double dispersion[2] = {0.0, 0.0};
  const double losses[2] = {0.0, 0.3};
  for (int variant = 0; variant < 2; ++variant) {
    sim::Simulator sim = make_sim(500, 23, losses[variant]);
    Aggregation agg({.rounds_per_epoch = rounds});
    RngStream rng(5);
    agg.start_epoch(sim, 0);
    for (int round = 0; round < rounds; ++round) agg.run_round(sim, rng);
    dispersion[variant] = agg.value_dispersion(sim);
  }
  // Masked exchanges mean less mixing per round.
  EXPECT_GT(dispersion[1], dispersion[0]);
}

TEST(LossBehavior, AggregationRoundDelayIsTheSlowestExchange) {
  sim::Simulator sim = make_sim(200, 29, /*loss=*/0.0, /*latency=*/3.0);
  Aggregation agg({.rounds_per_epoch = 5});
  RngStream rng(5);
  agg.start_epoch(sim, 0);
  for (int round = 0; round < 5; ++round) agg.run_round(sim, rng);
  // Constant 3-unit hops: every push-pull exchange takes exactly 6, and the
  // per-round maximum accumulates across the 5 rounds.
  EXPECT_DOUBLE_EQ(agg.epoch_delay(), 5 * 6.0);
  EXPECT_DOUBLE_EQ(agg.estimate_at(sim, 0).delay, 5 * 6.0);
}

TEST(LossBehavior, AggregationMaskedRoundChargesTheDetectionTimeout) {
  // Zero per-hop latency but heavy loss: the only wall-clock cost is
  // detecting masked exchanges, one ack timeout per affected round.
  sim::Simulator sim = make_sim(200, 29, /*loss=*/0.5);
  const double timeout = sim.channel().config().timeout;
  Aggregation agg({.rounds_per_epoch = 5});
  RngStream rng(5);
  agg.start_epoch(sim, 0);
  for (int round = 0; round < 5; ++round) agg.run_round(sim, rng);
  // At 50% loss every round of 200 exchanges masks at least one.
  EXPECT_DOUBLE_EQ(agg.epoch_delay(), 5 * timeout);
}

TEST(LossBehavior, MultiAggregationMeasuresEpochDelayLikeAggregation) {
  sim::Simulator sim = make_sim(200, 29, /*loss=*/0.0, /*latency=*/3.0);
  MultiAggregation multi({.rounds_per_epoch = 5, .instances = 2});
  RngStream rng(5);
  multi.start_epoch(sim, rng);
  for (int round = 0; round < 5; ++round) multi.run_round(sim, rng);
  EXPECT_DOUBLE_EQ(multi.epoch_delay(), 5 * 6.0);
  EXPECT_DOUBLE_EQ(multi.estimate_at(sim, 0).delay, 5 * 6.0);
}

TEST(LossBehavior, MultiAggregationConservesEveryInstanceUnderLoss) {
  sim::Simulator sim = make_sim(300, 31, /*loss=*/0.3);
  MultiAggregation multi({.rounds_per_epoch = 10, .instances = 4});
  RngStream rng(5);
  multi.start_epoch(sim, rng);
  for (int round = 0; round < 10; ++round) multi.run_round(sim, rng);
  for (std::uint32_t instance = 0; instance < 4; ++instance) {
    double mass = 0.0;
    for (const net::NodeId id : sim.graph().alive_nodes()) {
      mass += multi.value_of(instance, id);
    }
    EXPECT_NEAR(mass, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace p2pse::est
