#include "p2pse/est/monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "p2pse/est/sample_collide.hpp"
#include "p2pse/net/builders.hpp"
#include "p2pse/net/churn.hpp"

namespace p2pse::est {
namespace {

sim::Simulator hetero_sim(std::size_t n, std::uint64_t seed) {
  support::RngStream rng(seed);
  return sim::Simulator(net::build_heterogeneous_random({n, 1, 10}, rng),
                        seed ^ 0xabcdef);
}

SizeMonitor::EstimatorFn sample_collide_fn(std::uint32_t l) {
  auto sc = std::make_shared<SampleCollide>(
      SampleCollideConfig{.timer = 10.0, .collisions = l});
  return [sc](sim::Simulator& sim, net::NodeId init, support::RngStream& rng) {
    return sc->estimate_once(sim, init, rng);
  };
}

TEST(SizeMonitor, RequiresEstimator) {
  EXPECT_THROW(SizeMonitor({}, nullptr), std::invalid_argument);
}

TEST(SizeMonitor, PollProducesSamples) {
  sim::Simulator sim = hetero_sim(2000, 1);
  support::RngStream rng(2);
  SizeMonitor monitor({.smoothing_window = 1}, sample_collide_fn(20));
  const auto sample = monitor.poll(sim, rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_GT(sample->raw.value, 0.0);
  EXPECT_DOUBLE_EQ(sample->smoothed, sample->raw.value);
  EXPECT_EQ(monitor.polls(), 1u);
  EXPECT_EQ(monitor.history().size(), 1u);
  EXPECT_NE(monitor.initiator(), net::kInvalidNode);
}

TEST(SizeMonitor, SmoothingWindowAverages) {
  sim::Simulator sim = hetero_sim(2000, 3);
  support::RngStream rng(4);
  SizeMonitor monitor({.smoothing_window = 5}, sample_collide_fn(20));
  double last = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto s = monitor.poll(sim, rng);
    ASSERT_TRUE(s.has_value());
    last = s->smoothed;
  }
  EXPECT_NEAR(last, 2000.0, 700.0);
  EXPECT_DOUBLE_EQ(monitor.current(), last);
}

TEST(SizeMonitor, ReElectsDeadInitiator) {
  sim::Simulator sim = hetero_sim(500, 5);
  support::RngStream rng(6);
  SizeMonitor monitor({}, sample_collide_fn(10));
  ASSERT_TRUE(monitor.poll(sim, rng).has_value());
  const net::NodeId first = monitor.initiator();
  sim.graph().remove_node(first);
  ASSERT_TRUE(monitor.poll(sim, rng).has_value());
  EXPECT_NE(monitor.initiator(), first);
  EXPECT_TRUE(sim.graph().is_alive(monitor.initiator()));
}

TEST(SizeMonitor, EmptyOverlayFailsGracefully) {
  sim::Simulator sim(net::Graph(0), 7);
  support::RngStream rng(8);
  SizeMonitor monitor({}, sample_collide_fn(10));
  EXPECT_FALSE(monitor.poll(sim, rng).has_value());
  EXPECT_EQ(monitor.failures(), 1u);
}

TEST(SizeMonitor, AlarmFiresOnCatastrophicDrop) {
  sim::Simulator sim = hetero_sim(5000, 9);
  support::RngStream rng(10);
  SizeMonitor monitor({.smoothing_window = 1, .alarm_threshold = 0.3},
                      sample_collide_fn(100));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(monitor.poll(sim, rng).has_value());
  EXPECT_EQ(monitor.alarms(), 0u);
  // Halve the overlay: the next estimate drops by ~50% > 30% threshold.
  support::RngStream churn(11);
  net::remove_fraction(sim.graph(), 0.5, churn);
  const auto sample = monitor.poll(sim, rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(sample->alarm);
  EXPECT_EQ(monitor.alarms(), 1u);
}

TEST(SizeMonitor, AlarmsCanBeDisabled) {
  sim::Simulator sim = hetero_sim(2000, 12);
  support::RngStream rng(13);
  SizeMonitor monitor({.smoothing_window = 1, .alarm_threshold = 0.0},
                      sample_collide_fn(50));
  ASSERT_TRUE(monitor.poll(sim, rng).has_value());
  support::RngStream churn(14);
  net::remove_fraction(sim.graph(), 0.7, churn);
  const auto sample = monitor.poll(sim, rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_FALSE(sample->alarm);
}

TEST(SizeMonitor, PublishesEstimateGaugeAndCountersToMetrics) {
  sim::Simulator sim = hetero_sim(2000, 17);
  support::RngStream rng(18);
  SizeMonitor monitor({.smoothing_window = 1, .alarm_threshold = 0.0},
                      sample_collide_fn(20));
  obs::Metrics metrics;
  monitor.set_metrics(&metrics);
  EXPECT_FALSE(metrics.has_gauge("monitor.estimate"));
  const auto sample = monitor.poll(sim, rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(metrics.has_gauge("monitor.estimate"));
  EXPECT_DOUBLE_EQ(metrics.gauge("monitor.estimate"), monitor.current());
  ASSERT_TRUE(monitor.poll(sim, rng).has_value());
  EXPECT_DOUBLE_EQ(metrics.gauge("monitor.estimate"), monitor.current());
  EXPECT_EQ(metrics.counter("monitor.polls"), monitor.polls());
  EXPECT_EQ(metrics.counter("monitor.failures"), 0u);
  EXPECT_EQ(metrics.counter("monitor.alarms"), 0u);
  // Detaching stops publication without touching the monitor itself.
  monitor.set_metrics(nullptr);
  ASSERT_TRUE(monitor.poll(sim, rng).has_value());
  EXPECT_EQ(metrics.counter("monitor.polls"), 2u);
  EXPECT_EQ(monitor.polls(), 3u);
}

TEST(SizeMonitor, CountsFailuresInMetrics) {
  sim::Simulator sim(net::Graph(0), 19);
  support::RngStream rng(20);
  SizeMonitor monitor({}, sample_collide_fn(10));
  obs::Metrics metrics;
  monitor.set_metrics(&metrics);
  EXPECT_FALSE(monitor.poll(sim, rng).has_value());
  EXPECT_EQ(metrics.counter("monitor.polls"), 1u);
  EXPECT_EQ(metrics.counter("monitor.failures"), 1u);
  EXPECT_FALSE(metrics.has_gauge("monitor.estimate"));
}

TEST(SizeMonitor, HistoryIsBounded) {
  sim::Simulator sim = hetero_sim(500, 15);
  support::RngStream rng(16);
  SizeMonitor monitor({.smoothing_window = 1, .history_limit = 5},
                      sample_collide_fn(5));
  for (int i = 0; i < 12; ++i) (void)monitor.poll(sim, rng);
  EXPECT_EQ(monitor.history().size(), 5u);
  EXPECT_EQ(monitor.polls(), 12u);
}

/// An estimator that fails exactly when its initiator has no neighbors —
/// the behaviour of every walk-based estimator on a node whose component
/// was cut off the overlay.
SizeMonitor::EstimatorFn degree_gated_fn() {
  return [](sim::Simulator& sim, net::NodeId init, support::RngStream&) {
    Estimate e;
    e.time = sim.now();
    if (sim.graph().degree(init) == 0) {
      e.valid = false;
      return e;
    }
    e.value = static_cast<double>(sim.graph().size());
    return e;
  };
}

TEST(SizeMonitor, ReElectsInitiatorAfterFailedPoll) {
  // Regression: poll() used to re-elect only when the initiator *died*. An
  // alive-but-disconnected initiator made every estimation fail and was
  // retried forever; the header always promised re-election after failures.
  sim::Simulator sim(net::Graph(2), 21);  // two isolated nodes
  support::RngStream rng(22);
  SizeMonitor monitor({}, degree_gated_fn());
  EXPECT_FALSE(monitor.poll(sim, rng).has_value());
  EXPECT_EQ(monitor.failures(), 1u);
  // The failed initiator is dropped, not kept for a doomed retry.
  EXPECT_EQ(monitor.initiator(), net::kInvalidNode);
  // Once the overlay reconnects, the next poll elects fresh and succeeds.
  sim.graph().add_edge(0, 1);
  const auto sample = monitor.poll(sim, rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(sim.graph().is_alive(monitor.initiator()));
  EXPECT_EQ(monitor.failures(), 1u);
}

/// A counting estimator whose value is the 1-based poll index, so history
/// contents are exactly predictable.
SizeMonitor::EstimatorFn counting_fn(double* counter) {
  return [counter](sim::Simulator& sim, net::NodeId, support::RngStream&) {
    Estimate e;
    e.time = sim.now();
    e.value = ++*counter;
    return e;
  };
}

TEST(SizeMonitor, HistoryTrimKeepsNewestSamplesInOrder) {
  // The block trim (advance-offset + amortized compaction) is an internal
  // optimization: the observable window must be exactly the newest
  // `history_limit` samples, oldest first, at every point of a long run.
  sim::Simulator sim(net::Graph(4), 23);
  sim.graph().add_edge(0, 1);
  support::RngStream rng(24);
  double counter = 0.0;
  SizeMonitor monitor({.smoothing_window = 1, .history_limit = 8},
                      counting_fn(&counter));
  for (int push = 1; push <= 100; ++push) {
    ASSERT_TRUE(monitor.poll(sim, rng).has_value());
    const auto history = monitor.history();
    const std::size_t expected_size = std::min<std::size_t>(8, push);
    ASSERT_EQ(history.size(), expected_size);
    for (std::size_t i = 0; i < history.size(); ++i) {
      // Oldest-first: entry i holds poll number push - size + 1 + i.
      const double want = static_cast<double>(push - expected_size + 1 + i);
      EXPECT_DOUBLE_EQ(history[i].raw.value, want);
      EXPECT_DOUBLE_EQ(history[i].smoothed, want);
    }
  }
  EXPECT_EQ(monitor.polls(), 100u);
}

TEST(SizeMonitor, HistoryBelowLimitIsNeverTrimmed) {
  sim::Simulator sim(net::Graph(2), 25);
  sim.graph().add_edge(0, 1);
  support::RngStream rng(26);
  double counter = 0.0;
  SizeMonitor monitor({.smoothing_window = 1, .history_limit = 50},
                      counting_fn(&counter));
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(monitor.poll(sim, rng).has_value());
  const auto history = monitor.history();
  ASSERT_EQ(history.size(), 20u);
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_DOUBLE_EQ(history[i].raw.value, static_cast<double>(i + 1));
  }
}

}  // namespace
}  // namespace p2pse::est
